"""The live observability plane: registry, publisher, heartbeats."""

import json

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.live import (
    Counter,
    Gauge,
    Histogram,
    LiveRun,
    MetricsRegistry,
    StatusPublisher,
    WorkerLiveConfig,
    atomic_write_json,
    read_heartbeats,
    read_status,
    render_prometheus,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("done").inc()
        reg.counter("done").inc(4)
        reg.gauge("eta").set(12.5)
        reg.histogram("lat", uppers=(1.0, 2.0)).observe(0.5)
        reg.histogram("lat", uppers=(1.0, 2.0)).observe(1.5)
        reg.histogram("lat", uppers=(1.0, 2.0)).observe(99.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"done": 5}
        assert snap["gauges"] == {"eta": 12.5}
        hist = snap["histograms"]["lat"]
        assert hist["buckets"] == [1.0, 2.0]
        assert hist["counts"] == [1, 2, 3]  # cumulative incl. +Inf
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(101.0)

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="exists as Counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="exists as Counter"):
            reg.histogram("x")

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", uppers=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("lat", uppers=(1.0, 3.0))

    def test_histogram_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", uppers=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("empty", uppers=())

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        snap = reg.snapshot()
        c.inc()
        assert snap["counters"]["n"] == 0


class TestPrometheus:
    def test_renders_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("points_done").inc(3)
        reg.gauge("eta_s").set(1.5)
        h = reg.histogram("elapsed", uppers=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE points_done counter\npoints_done 3" in text
        assert "# TYPE eta_s gauge\neta_s 1.5" in text
        assert 'elapsed_bucket{le="0.1"} 1' in text
        assert 'elapsed_bucket{le="+Inf"} 2' in text
        assert "elapsed_count 2" in text
        assert text.endswith("\n")

    def test_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("points.done/now").inc()
        text = render_prometheus(reg.snapshot())
        assert "points_done_now 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""


class TestStatusPublisher:
    def test_throttles_on_injected_clock(self, tmp_path):
        clock = FakeClock()
        reg = MetricsRegistry()
        pub = StatusPublisher(tmp_path, reg, interval_s=1.0, time_fn=clock)
        assert pub.maybe_publish()  # first write always lands
        assert not pub.maybe_publish()
        clock.advance(0.5)
        assert not pub.maybe_publish()
        clock.advance(0.6)
        assert pub.maybe_publish()
        assert pub.writes == 2

    def test_publish_forces_and_stamps(self, tmp_path):
        clock = FakeClock(2000.0)
        reg = MetricsRegistry()
        reg.counter("n").inc(7)
        pub = StatusPublisher(
            tmp_path, reg, interval_s=100.0, time_fn=clock,
            extra={"command": "sweep"},
        )
        pub.publish()
        status = read_status(tmp_path)
        assert status["updated_unix"] == 2000.0
        assert status["command"] == "sweep"
        assert status["counters"] == {"n": 7}

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        atomic_write_json(tmp_path / "status.json", {"a": 1})
        atomic_write_json(tmp_path / "status.json", {"a": 2})
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["status.json"]
        assert read_status(tmp_path) == {"a": 2}

    def test_read_status_missing_or_torn(self, tmp_path):
        assert read_status(tmp_path) is None
        (tmp_path / "status.json").write_text('{"torn": ')
        assert read_status(tmp_path) is None


class TestWorkerHeartbeat:
    def _config(self, tmp_path, **kw):
        kw.setdefault("worker_id", "w1")
        kw.setdefault("total_points", 10)
        return WorkerLiveConfig(directory=str(tmp_path), **kw)

    def test_lifecycle_and_snapshot(self, tmp_path):
        clock = FakeClock(500.0)
        beat = self._config(tmp_path).open(time_fn=clock)
        beat.start_points(["hotspot #0", "bfs #1"])
        beats = read_heartbeats(tmp_path)
        assert len(beats) == 1
        assert beats[0]["current"] == ["hotspot #0", "bfs #1"]
        beat.finish_points(
            done=2, failed=0, retried=0, lane_cycles=2400, busy_s=2.0
        )
        (snap,) = read_heartbeats(tmp_path)
        assert snap["worker"] == "w1"
        assert snap["points_done"] == 2
        assert snap["current"] == []
        assert snap["lane_cycles_per_s"] == pytest.approx(1200.0)
        # 8 of 10 points remain at 1 s/point.
        assert snap["eta_s"] == pytest.approx(8.0)

    def test_accumulates_across_processes(self, tmp_path):
        # The killable sweep path forks one process per task; the
        # heartbeat file must outlive each process and keep counting.
        config = self._config(tmp_path)
        first = config.open(time_fn=FakeClock())
        first.finish_points(
            done=1, failed=0, retried=0, lane_cycles=100, busy_s=0.5
        )
        second = config.open(time_fn=FakeClock())
        second.finish_points(
            done=2, failed=1, retried=1, lane_cycles=300, busy_s=1.5
        )
        (snap,) = read_heartbeats(tmp_path)
        assert snap["points_done"] == 3
        assert snap["points_failed"] == 1
        assert snap["points_retried"] == 1
        assert snap["lane_cycles"] == 400
        assert snap["busy_s"] == pytest.approx(2.0)

    def test_maybe_write_throttles(self, tmp_path):
        clock = FakeClock()
        beat = self._config(tmp_path, interval_s=1.0).open(time_fn=clock)
        beat.write()
        assert not beat.maybe_write()
        clock.advance(1.5)
        assert beat.maybe_write()

    def test_unreadable_heartbeats_skipped(self, tmp_path):
        config = self._config(tmp_path)
        config.open(time_fn=FakeClock()).write()
        hb_dir = tmp_path / "heartbeats"
        (hb_dir / "worker-torn.json").write_text("{nope")
        beats = read_heartbeats(tmp_path)
        assert [b["worker"] for b in beats] == ["w1"]


class TestLiveRun:
    def test_event_sink_streams_jsonl(self, tmp_path):
        live = LiveRun(tmp_path, interval_s=0.0)
        tele = Telemetry(run_id="r")
        live.attach(tele)
        tele.event("alpha", x=1)
        tele.event("beta", y=2)
        live.close()
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["alpha", "beta"]

    def test_close_publishes_final_status(self, tmp_path):
        live = LiveRun(tmp_path, interval_s=1e9)
        live.registry.counter("n").inc(3)
        live.close()
        assert read_status(tmp_path)["counters"] == {"n": 3}

    def test_worker_config_points_at_directory(self, tmp_path):
        live = LiveRun(tmp_path)
        config = live.worker_config(
            "w7", total_points=5, checkpoint_path=tmp_path / "ckpt.json"
        )
        assert config.directory == str(tmp_path)
        assert config.worker_id == "w7"
        assert config.total_points == 5
        live.close()
