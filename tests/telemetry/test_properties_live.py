"""Property-based tests (hypothesis) of the observability primitives.

* :class:`MetricChannel` decimation: bounded memory, exact offer
  accounting, and uniform spacing of the retained offers at the
  current stride — for any run length and capacity.
* :class:`Histogram`: bucket counts partition the observations, the
  cumulative rendering is monotone, and the sum matches.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.telemetry.live import Histogram
from repro.telemetry.recorder import MetricChannel

capacities = st.integers(min_value=2, max_value=64)
run_lengths = st.integers(min_value=0, max_value=3000)


class TestChannelDecimationProperties:
    @given(capacity=capacities, n=run_lengths)
    @settings(max_examples=60, deadline=None)
    def test_kept_bounded_and_offered_exact(self, capacity, n):
        chan = MetricChannel("v", capacity=capacity)
        for cycle in range(n):
            chan.record(cycle, float(cycle))
        assert len(chan) <= capacity
        assert chan.offered == n
        assert len(chan.cycles) == len(chan.values)

    @given(capacity=capacities, n=run_lengths)
    @settings(max_examples=60, deadline=None)
    def test_retained_offers_uniformly_spaced_at_stride(self, capacity, n):
        chan = MetricChannel("v", capacity=capacity)
        for cycle in range(n):
            chan.record(cycle, float(cycle))
        # Offer index == cycle here, so the retained cycles must be
        # exactly 0, stride, 2*stride, ...: uniformly spaced from the
        # first offer, no gaps, no phase drift after any number of
        # halvings.
        assert chan.cycles == list(range(0, n, chan.stride))[: len(chan)]
        stride = chan.stride
        assert stride & (stride - 1) == 0  # power of two
        assert all(c % stride == 0 for c in chan.cycles)

    @given(capacity=capacities, n=run_lengths)
    @settings(max_examples=60, deadline=None)
    def test_values_follow_their_cycles(self, capacity, n):
        chan = MetricChannel("v", capacity=capacity)
        for cycle in range(n):
            chan.record(cycle, float(cycle) * 0.5)
        assert chan.values == [c * 0.5 for c in chan.cycles]


observations = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=200,
)
bucket_bounds = st.lists(
    st.floats(
        min_value=-1e3, max_value=1e3,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1, max_size=8, unique=True,
).map(sorted)


class TestHistogramProperties:
    @given(uppers=bucket_bounds, values=observations)
    @settings(max_examples=60, deadline=None)
    def test_counts_partition_the_observations(self, uppers, values):
        hist = Histogram("h", uppers=uppers)
        for v in values:
            hist.observe(v)
        # Raw (non-cumulative) counts partition the observation set.
        assert sum(hist.counts) == len(values)
        assert hist.total == len(values)
        # Each value lands in exactly the first bucket that bounds it.
        for i, upper in enumerate(uppers):
            lower = uppers[i - 1] if i else -math.inf
            expected = sum(1 for v in values if lower < v <= upper)
            assert hist.counts[i] == expected
        assert hist.counts[-1] == sum(1 for v in values if v > uppers[-1])

    @given(uppers=bucket_bounds, values=observations)
    @settings(max_examples=60, deadline=None)
    def test_cumulative_rendering_monotone_and_closed(self, uppers, values):
        hist = Histogram("h", uppers=uppers)
        for v in values:
            hist.observe(v)
        out = hist.to_dict()
        counts = out["counts"]
        assert counts == sorted(counts)  # cumulative => monotone
        assert counts[-1] == len(values)  # +Inf closes the books
        assert out["count"] == len(values)
        assert out["sum"] == sum(float(v) for v in values)

    @given(uppers=bucket_bounds, values=observations)
    @settings(max_examples=40, deadline=None)
    def test_observation_order_is_irrelevant(self, uppers, values):
        forward = Histogram("h", uppers=uppers)
        backward = Histogram("h", uppers=uppers)
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert forward.counts == backward.counts
