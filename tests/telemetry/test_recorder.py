"""Tests for the run-telemetry recorder and manifest persistence."""

import json
import math

import numpy as np
import pytest

from repro.telemetry import (
    EVENTS_NAME,
    MetricChannel,
    Telemetry,
    config_hash,
    load_manifest,
    read_events,
    render_manifest,
    to_jsonable,
    write_run,
)


class TestTimers:
    def test_timer_accumulates(self):
        tele = Telemetry()
        with tele.timer("stage"):
            pass
        with tele.timer("stage"):
            pass
        assert tele.timings["stage"] >= 0.0
        assert len(tele.timings) == 1

    def test_add_time_accumulates(self):
        tele = Telemetry()
        tele.add_time("solve", 0.5)
        tele.add_time("solve", 0.25)
        assert tele.timings["solve"] == pytest.approx(0.75)

    def test_timer_records_on_exception(self):
        tele = Telemetry()
        with pytest.raises(RuntimeError):
            with tele.timer("boom"):
                raise RuntimeError("x")
        assert "boom" in tele.timings

    def test_elapsed_monotonic(self):
        tele = Telemetry()
        first = tele.elapsed_s
        assert tele.elapsed_s >= first >= 0.0


class TestCountersAndMetrics:
    def test_incr(self):
        tele = Telemetry()
        tele.incr("steps")
        tele.incr("steps", 4)
        assert tele.counters["steps"] == 5

    def test_set_metrics(self):
        tele = Telemetry()
        tele.set_metrics({"a": 1, "b": 2.0})
        tele.set_metric("a", 3)
        assert tele.metrics == {"a": 3, "b": 2.0}


class TestMetricChannel:
    def test_bounded_for_any_run_length(self):
        chan = MetricChannel("v", capacity=16)
        for cycle in range(10_000):
            chan.record(cycle, float(cycle))
        assert len(chan) < 16
        assert chan.offered == 10_000

    def test_stride_is_power_of_two(self):
        chan = MetricChannel("v", capacity=8)
        for cycle in range(1000):
            chan.record(cycle, 0.0)
        assert chan.stride & (chan.stride - 1) == 0

    def test_kept_cycles_uniformly_spaced(self):
        chan = MetricChannel("v", capacity=8)
        for cycle in range(1000):
            chan.record(cycle, float(cycle))
        diffs = np.diff(chan.cycles)
        assert np.all(diffs == chan.stride)
        assert chan.cycles[0] == 0

    def test_no_decimation_under_capacity(self):
        chan = MetricChannel("v", capacity=64)
        for cycle in range(50):
            chan.record(cycle, float(cycle))
        assert chan.stride == 1
        assert chan.values == [float(c) for c in range(50)]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MetricChannel("v", capacity=1)

    def test_telemetry_channel_handle_is_cached(self):
        tele = Telemetry()
        assert tele.channel("v") is tele.channel("v")

    def test_channel_capacity_mismatch_rejected(self):
        # Regression: a second channel() call with a different capacity
        # used to silently return the existing channel at its original
        # capacity; the caller's bound was ignored without a word.
        tele = Telemetry()
        tele.channel("v", capacity=64)
        with pytest.raises(ValueError, match="capacity"):
            tele.channel("v", capacity=128)

    def test_channel_same_or_default_capacity_ok(self):
        tele = Telemetry()
        chan = tele.channel("v", capacity=64)
        assert tele.channel("v", capacity=64) is chan
        assert tele.channel("v") is chan  # default = don't care


class TestDisabledRecorder:
    def test_all_mutators_are_noops(self):
        tele = Telemetry(enabled=False)
        with tele.timer("s"):
            pass
        tele.add_time("s", 1.0)
        tele.incr("c")
        tele.set_metric("m", 1)
        tele.record("chan", 0, 1.0)
        tele.event("kind", x=1)
        assert tele.timings == {}
        assert tele.counters == {}
        assert tele.metrics == {}
        assert tele.events == []
        # channel() still hands out a handle; record() never fed it.
        assert len(tele.channel("chan")) == 0


class TestJsonable:
    def test_numpy_scalars_round_trip(self):
        out = to_jsonable({"a": np.float64(1.5), "b": np.int64(7)})
        text = json.dumps(out)
        back = json.loads(text)
        assert back == {"a": 1.5, "b": 7}
        assert isinstance(back["b"], int)

    def test_numpy_arrays_round_trip(self):
        out = to_jsonable(np.arange(4, dtype=np.int64).reshape(2, 2))
        assert json.loads(json.dumps(out)) == [[0, 1], [2, 3]]

    def test_nested_structures(self):
        out = to_jsonable(
            {"xs": (np.float32(0.5), [np.int32(2)]), "s": {1, 1}}
        )
        assert json.loads(json.dumps(out)) == {"xs": [0.5, [2]], "s": [1]}


class TestManifest:
    def make_recorded_run(self):
        tele = Telemetry(run_id="unit")
        tele.add_time("solve", 0.2)
        tele.add_time("model", 0.3)
        tele.incr("steps", 10)
        tele.set_metric("min_v", np.float64(0.91))
        for cycle in range(40):
            tele.record("v", cycle, 1.0 - cycle * 1e-3)
        tele.event("start", note="hello")
        tele.event("done")
        return tele

    def test_write_and_load_round_trip(self, tmp_path):
        tele = self.make_recorded_run()
        path = write_run(
            tele, tmp_path / "t", config={"seed": 9, "cycles": 40},
            extra={"command": "unit"},
        )
        manifest = load_manifest(path)
        assert manifest["run_id"] == "unit"
        assert manifest["seed"] == 9
        assert manifest["command"] == "unit"
        assert manifest["counters"]["steps"] == 10
        assert manifest["timings_s"]["solve"] == pytest.approx(0.2)
        assert manifest["channels"]["v"]["kept"] == 40
        assert manifest["num_events"] == 2
        assert manifest["config_hash"] == config_hash(
            {"seed": 9, "cycles": 40}
        )

    def test_load_accepts_directory(self, tmp_path):
        write_run(self.make_recorded_run(), tmp_path)
        assert load_manifest(tmp_path)["run_id"] == "unit"

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path / "nowhere")

    def test_events_jsonl_one_object_per_line(self, tmp_path):
        write_run(self.make_recorded_run(), tmp_path)
        lines = (tmp_path / EVENTS_NAME).read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["kind"] for e in events] == ["start", "done"]
        assert all("t_s" in e for e in events)

    def test_config_hash_stable_and_order_insensitive(self):
        a = config_hash({"x": 1, "y": 2})
        b = config_hash({"y": 2, "x": 1})
        assert a == b
        assert a != config_hash({"x": 1, "y": 3})

    def test_render_mentions_stages_counters_channels(self, tmp_path):
        path = write_run(
            self.make_recorded_run(), tmp_path, config={"seed": 9}
        )
        text = render_manifest(load_manifest(path))
        for needle in ("run unit", "solve", "steps", "min_v", "v",
                       "stage sum", "2 events"):
            assert needle in text

    def test_render_handles_minimal_manifest(self):
        text = render_manifest({"run_id": "bare"})
        assert "run bare" in text
        assert "0 events" in text

    def test_manifest_is_json_clean(self, tmp_path):
        """Every value written must survive strict JSON (no NaN from the
        NumPy metric, no sets, no dataclasses)."""
        path = write_run(
            self.make_recorded_run(), tmp_path, config={"seed": 1}
        )
        data = json.loads(path.read_text())
        assert not math.isnan(float(data["metrics"]["min_v"]))


class TestSections:
    def test_section_becomes_top_level_manifest_key(self, tmp_path):
        tele = Telemetry(run_id="sec")
        tele.set_section("noise", {"summary": {"droop_event_count": 0}})
        manifest = load_manifest(write_run(tele, tmp_path))
        assert manifest["noise"]["summary"]["droop_event_count"] == 0

    def test_section_values_are_jsonable_coerced(self, tmp_path):
        tele = Telemetry(run_id="sec")
        tele.set_section("noise", {"rms": np.float64(0.01),
                                   "series": np.arange(3)})
        manifest = load_manifest(write_run(tele, tmp_path))
        assert manifest["noise"]["rms"] == pytest.approx(0.01)
        assert manifest["noise"]["series"] == [0, 1, 2]

    def test_reserved_name_rejected(self, tmp_path):
        tele = Telemetry(run_id="sec")
        tele.set_section("metrics", {"clash": 1})
        with pytest.raises(ValueError):
            write_run(tele, tmp_path)

    def test_disabled_recorder_ignores_sections(self):
        tele = Telemetry(enabled=False)
        tele.set_section("noise", {"x": 1})
        assert tele.sections == {}


class TestReadEvents:
    def write_dir(self, tmp_path):
        tele = Telemetry(run_id="ev")
        tele.event("start")
        tele.event("done", extra=1)
        write_run(tele, tmp_path)
        return tmp_path

    def test_healthy_log(self, tmp_path):
        events, note = read_events(self.write_dir(tmp_path))
        assert [e["kind"] for e in events] == ["start", "done"]
        assert note is None

    def test_accepts_manifest_path(self, tmp_path):
        self.write_dir(tmp_path)
        events, note = read_events(tmp_path / "manifest.json")
        assert len(events) == 2 and note is None

    def test_missing_file_noted_not_raised(self, tmp_path):
        self.write_dir(tmp_path)
        (tmp_path / EVENTS_NAME).unlink()
        events, note = read_events(tmp_path)
        assert events == []
        assert "missing" in note

    def test_truncated_last_line_noted(self, tmp_path):
        self.write_dir(tmp_path)
        path = tmp_path / EVENTS_NAME
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 15])  # cut mid-JSON-object
        events, note = read_events(tmp_path)
        assert [e["kind"] for e in events] == ["start"]
        assert "truncated" in note
        assert "1 of 2" in note

    def test_blank_lines_skipped_without_note(self, tmp_path):
        self.write_dir(tmp_path)
        path = tmp_path / EVENTS_NAME
        path.write_text(path.read_text() + "\n\n")
        events, note = read_events(tmp_path)
        assert len(events) == 2
        assert note is None


class TestStreamingEvents:
    """iter_events / tail_events — the O(1)-space streaming readers."""

    def write_lines(self, tmp_path, lines):
        path = tmp_path / EVENTS_NAME
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        return path

    def test_iter_events_streams_lazily(self, tmp_path):
        from repro.telemetry import iter_events

        path = self.write_lines(tmp_path, [{"kind": "a"}, {"kind": "b"}])
        gen = iter_events(path)
        assert next(gen)["kind"] == "a"
        assert next(gen)["kind"] == "b"
        assert list(gen) == []

    def test_iter_events_from_byte_offset(self, tmp_path):
        from repro.telemetry import iter_events

        path = self.write_lines(tmp_path, [{"kind": "a"}, {"kind": "b"}])
        first = len(json.dumps({"kind": "a"}) + "\n")
        assert [e["kind"] for e in iter_events(path, offset=first)] == ["b"]

    def test_iter_events_missing_file_yields_nothing(self, tmp_path):
        from repro.telemetry import iter_events

        assert list(iter_events(tmp_path / EVENTS_NAME)) == []

    def test_iter_events_reports_bad_lines(self, tmp_path):
        from repro.telemetry import iter_events

        path = tmp_path / EVENTS_NAME
        path.write_text('{"kind": "a"}\n{torn\n{"kind": "b"}\n')
        bad = []
        events = list(iter_events(path, on_bad=bad.append))
        assert [e["kind"] for e in events] == ["a", "b"]
        assert len(bad) == 1

    def test_tail_events_incremental_polls(self, tmp_path):
        from repro.telemetry import tail_events

        path = self.write_lines(tmp_path, [{"kind": "a"}])
        events, offset = tail_events(path)
        assert [e["kind"] for e in events] == ["a"]
        # Nothing new: same offset, no events.
        again, offset2 = tail_events(path, offset)
        assert again == [] and offset2 == offset
        # Append one more and poll from the saved offset.
        with open(path, "a") as handle:
            handle.write(json.dumps({"kind": "b"}) + "\n")
        fresh, _ = tail_events(path, offset)
        assert [e["kind"] for e in fresh] == ["b"]

    def test_tail_events_leaves_partial_line_for_next_poll(self, tmp_path):
        from repro.telemetry import tail_events

        path = self.write_lines(tmp_path, [{"kind": "a"}])
        with open(path, "a") as handle:
            handle.write('{"kind": "in-prog')  # write in progress
        events, offset = tail_events(path)
        assert [e["kind"] for e in events] == ["a"]
        # The writer finishes the line; the next poll picks it up whole.
        with open(path, "a") as handle:
            handle.write('ress"}\n')
        fresh, _ = tail_events(path, offset)
        assert [e["kind"] for e in fresh] == ["in-progress"]

    def test_tail_events_missing_file(self, tmp_path):
        from repro.telemetry import tail_events

        events, offset = tail_events(tmp_path / EVENTS_NAME, offset=0)
        assert events == [] and offset == 0

    def test_read_events_final_line_without_newline_ok(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        path.write_text('{"kind": "a"}\n{"kind": "b"}')  # no trailing \n
        events, note = read_events(path)
        assert [e["kind"] for e in events] == ["a", "b"]
        assert note is None

    def test_resolve_events_path_variants(self, tmp_path):
        from repro.telemetry import resolve_events_path

        assert resolve_events_path(tmp_path) == tmp_path / EVENTS_NAME
        assert (
            resolve_events_path(tmp_path / "manifest.json")
            == tmp_path / EVENTS_NAME
        )
        other = tmp_path / "custom.jsonl"
        assert resolve_events_path(other) == other
