"""End-to-end fault scenarios through run_cosim.

Locks the PR's acceptance pair: under the canned guardband-breaker
scenario (CR-IVR phase loss + sensor dropout + layer shutoff) the
watchdog-enabled controller ends in a declared safe state, while the
degradation-disabled controller demonstrably violates the guardband.
"""

import numpy as np
import pytest

from repro.core.controller import ControllerConfig
from repro.faults import (
    SAFE_STATE,
    SURVIVED,
    VIOLATED,
    CRIVRPhaseLoss,
    FaultSchedule,
    ProcessVariation,
    get_scenario,
)
from repro.sim.cosim import CosimConfig, run_cosim

# Long enough for the breaker scenario's layer shutoff (recorded cycle
# 300) plus the watchdog escalation to play out.
CYCLES, WARMUP, SEED = 600, 100, 3


def breaker_config(degradation: bool) -> CosimConfig:
    return CosimConfig(
        cycles=CYCLES,
        warmup_cycles=WARMUP,
        seed=SEED,
        faults=get_scenario("guardband-breaker"),
        controller=ControllerConfig(
            watchdog_enabled=degradation,
            sensor_fallback_enabled=degradation,
        ),
    )


@pytest.fixture(scope="module")
def breaker_pair():
    hardened = run_cosim("hotspot", breaker_config(degradation=True))
    plain = run_cosim("hotspot", breaker_config(degradation=False))
    return hardened, plain


class TestAcceptancePair:
    def test_degraded_controller_reaches_safe_state(self, breaker_pair):
        hardened, _ = breaker_pair
        report = hardened.fault_report
        assert report["verdict"] in (SAFE_STATE, SURVIVED)
        assert report["summary"]["watchdog_engagements"] >= 1
        assert report["summary"]["safe_state_decisions"] > 0

    def test_unprotected_controller_violates(self, breaker_pair):
        _, plain = breaker_pair
        report = plain.fault_report
        assert report["verdict"] == VIOLATED
        assert report["summary"]["watchdog_engagements"] == 0
        assert report["summary"]["guardband_violation_cycles"] > 0

    def test_degradation_strictly_improves_the_outcome(self, breaker_pair):
        hardened, plain = breaker_pair
        good = hardened.fault_report["summary"]
        bad = plain.fault_report["summary"]
        assert good["verdict_code"] < bad["verdict_code"]
        # The safe state limits the excursion depth: the hardened run's
        # worst droop is strictly shallower than the unprotected run's.
        assert good["min_voltage_v"] > bad["min_voltage_v"]

    def test_sensor_fallback_engaged_under_dropout(self, breaker_pair):
        hardened, plain = breaker_pair
        assert hardened.fault_report["summary"]["sensor_fallback_samples"] > 0
        assert plain.fault_report["summary"]["sensor_fallback_samples"] == 0
        # Both saw the same dropout faults.
        assert hardened.fault_report["summary"]["nan_samples_seen"] > 0
        assert plain.fault_report["summary"]["nan_samples_seen"] > 0


class TestFaultReportPlumbing:
    def test_no_schedule_no_report(self):
        result = run_cosim(
            "hotspot", CosimConfig(cycles=60, warmup_cycles=10)
        )
        assert result.fault_report is None

    def test_manifest_gets_faults_section(self, tmp_path):
        from repro.telemetry import Telemetry, load_manifest, write_run

        config = CosimConfig(
            cycles=120, warmup_cycles=20, seed=SEED,
            faults=get_scenario("sensor-storm"),
        )
        tele = Telemetry(run_id="faults-test")
        run_cosim("hotspot", config, telemetry=tele)
        write_run(tele, tmp_path, config=config)
        manifest = load_manifest(tmp_path)
        faults = manifest["faults"]
        assert faults["schedule"] == "sensor-storm"
        assert faults["verdict"] in (SURVIVED, SAFE_STATE, VIOLATED)
        assert faults["summary"]["verdict_code"] == {
            SURVIVED: 0, SAFE_STATE: 1, VIOLATED: 2
        }[faults["verdict"]]
        kinds = [e["kind"] for e in tele.events]
        assert "faults_armed" in kinds
        assert "fault_verdict" in kinds


class TestCircuitFaultsInCosim:
    def test_phase_loss_refactorizes_once_per_edge(self):
        schedule = FaultSchedule(
            events=(
                CRIVRPhaseLoss(start_cycle=20, end_cycle=60,
                               capacity_fraction=0.2),
            ),
            name="one-pulse",
        )
        result = run_cosim(
            "hotspot",
            CosimConfig(cycles=150, warmup_cycles=30, faults=schedule),
        )
        # One edge in (cycle 20) and one out (cycle 60).
        counters = result.fault_report["counters"]
        assert counters["refactorizations"] == 2

    def test_phase_loss_degrades_min_voltage(self):
        base = CosimConfig(cycles=200, warmup_cycles=50, seed=SEED)
        clean = run_cosim("hotspot", base)
        faulted = run_cosim(
            "hotspot",
            CosimConfig(
                cycles=200, warmup_cycles=50, seed=SEED,
                faults=FaultSchedule(
                    events=(CRIVRPhaseLoss(capacity_fraction=0.02),),
                    name="dead-ivr",
                ),
            ),
        )
        assert faulted.min_voltage < clean.min_voltage

    def test_process_variation_keeps_ledger_closed(self):
        """PV scaling happens before current accounting, so the noise
        observatory's board-vs-delivered ledger still closes."""
        schedule = FaultSchedule(
            events=(ProcessVariation(sigma=0.1, start_cycle=-10**9),),
            seed=2,
            name="pv",
        )
        result = run_cosim(
            "hotspot",
            CosimConfig(cycles=200, warmup_cycles=50, faults=schedule),
        )
        report = result.fault_report
        assert report["verdict"] in (SURVIVED, SAFE_STATE, VIOLATED)
        # Powers were genuinely scaled: per-SM mean draw differs.
        means = result.power_trace.data.mean(axis=0)
        assert float(np.std(means / means.mean())) > 0.01


class TestSystemFaultsInCosim:
    def test_scheduler_storm_runs_and_counts(self):
        # 500 recorded cycles reach into the scenario's power-gate
        # window (recorded cycles 400..800).
        result = run_cosim(
            "hotspot",
            CosimConfig(
                cycles=550, warmup_cycles=50, seed=SEED,
                faults=get_scenario("scheduler-storm"),
            ),
        )
        counters = result.fault_report["counters"]
        assert counters["halted_sm_cycles"] > 0
        assert (
            counters["observations_dropped"] > 0
            or counters["latency_jitter_cycles"] > 0
        )
