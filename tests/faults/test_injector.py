"""Unit tests for the FaultInjector runtime (no co-simulation)."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.faults import (
    ActuatorStuck,
    ControlLoopJitter,
    CRIVRPhaseLoss,
    DFSTransient,
    FaultInjector,
    FaultSchedule,
    LayerShutoff,
    PowerGateTransient,
    ProcessVariation,
    SensorDropout,
    SensorNoise,
    SensorStuck,
)

STACK = StackConfig()


def make_injector(*events, seed=0):
    return FaultInjector(FaultSchedule(events=events, seed=seed), STACK)


def healthy():
    return np.full(STACK.num_sms, 1.0)


class TestValidation:
    def test_sm_index_out_of_range(self):
        with pytest.raises(ValueError, match="targets SM 16"):
            make_injector(SensorStuck(sms=(16,)))

    def test_layer_out_of_range(self):
        with pytest.raises(ValueError, match="layer 4"):
            make_injector(LayerShutoff(layer=4))

    def test_circuit_fault_needs_pdn_handles(self):
        with pytest.raises(ValueError, match="pdn/solver"):
            make_injector(CRIVRPhaseLoss())

    def test_explicit_pv_scales_length_checked(self):
        with pytest.raises(ValueError, match="entries"):
            make_injector(ProcessVariation(scales=(1.0, 1.0)))


class TestSensorCorruption:
    def test_inactive_window_returns_same_array(self):
        injector = make_injector(SensorNoise(start_cycle=100))
        voltages = healthy()
        assert injector.corrupt_sensors(0, voltages) is voltages

    def test_corruption_copies_never_mutates_input(self):
        injector = make_injector(SensorStuck(value_v=0.5, sms=(3,)))
        voltages = healthy()
        seen = injector.corrupt_sensors(0, voltages)
        assert seen is not voltages
        assert voltages[3] == 1.0
        assert seen[3] == 0.5

    def test_dropout_probability_one_blanks_all_targets(self):
        injector = make_injector(SensorDropout(probability=1.0, sms=(0, 5)))
        seen = injector.corrupt_sensors(0, healthy())
        assert np.isnan(seen[[0, 5]]).all()
        assert np.isfinite(np.delete(seen, [0, 5])).all()
        assert injector.counters["sensor_samples_dropped"] == 2

    def test_noise_is_seed_reproducible(self):
        a = make_injector(SensorNoise(sigma_v=0.05), seed=7)
        b = make_injector(SensorNoise(sigma_v=0.05), seed=7)
        assert np.array_equal(
            a.corrupt_sensors(0, healthy()), b.corrupt_sensors(0, healthy())
        )

    def test_later_event_overrides_earlier_on_shared_sms(self):
        injector = make_injector(
            SensorNoise(sigma_v=0.5, sms=(2,)),
            SensorStuck(value_v=0.9, sms=(2,)),
        )
        assert injector.corrupt_sensors(0, healthy())[2] == 0.9


class TestProcessVariation:
    def test_scales_applied_in_active_window_only(self):
        scales = tuple(0.5 if i == 0 else 1.0 for i in range(STACK.num_sms))
        injector = make_injector(
            ProcessVariation(scales=scales, start_cycle=10, end_cycle=20)
        )
        before = injector.scale_powers(0, np.full(STACK.num_sms, 2.0))
        assert before[0] == 2.0
        during = injector.scale_powers(15, np.full(STACK.num_sms, 2.0))
        assert during[0] == 1.0
        assert during[1] == 2.0

    def test_random_scales_fixed_for_whole_run(self):
        injector = make_injector(ProcessVariation(sigma=0.2), seed=5)
        first = injector.scale_powers(0, np.ones(STACK.num_sms)).copy()
        second = injector.scale_powers(1, np.ones(STACK.num_sms))
        assert np.array_equal(first, second)
        assert not np.allclose(first, 1.0)


class TestActuation:
    def test_jam_overrides_commanded_value(self):
        injector = make_injector(
            ActuatorStuck(actuator="diws", sms=(1,), value=0.25)
        )
        widths = np.full(STACK.num_sms, 2.0)
        injector.distort_actuation(0, widths, np.zeros(16), np.zeros(16))
        assert widths[1] == 0.25
        assert widths[0] == 2.0
        assert injector.counters["actuation_overrides"] == 1

    def test_stuck_freezes_value_at_activation_edge(self):
        injector = make_injector(
            ActuatorStuck(actuator="fii", sms=(4,), start_cycle=10)
        )
        fakes = np.zeros(STACK.num_sms)
        fakes[4] = 0.7  # command in force when the fault begins
        injector.distort_actuation(10, np.zeros(16), fakes, np.zeros(16))
        assert fakes[4] == 0.7
        # Later commands cannot move the stuck actuator.
        fakes2 = np.zeros(STACK.num_sms)
        injector.distort_actuation(11, np.zeros(16), fakes2, np.zeros(16))
        assert fakes2[4] == 0.7


class TestTimingFaults:
    def test_certain_drop_blocks_observation(self):
        injector = make_injector(ControlLoopJitter(drop_probability=1.0))
        assert not injector.observation_allowed(0)
        assert injector.counters["observations_dropped"] == 1

    def test_no_jitter_outside_window(self):
        injector = make_injector(
            ControlLoopJitter(extra_latency_cycles=8, start_cycle=50)
        )
        assert injector.extra_latency(0) == 0
        extras = [injector.extra_latency(60) for _ in range(50)]
        assert all(0 <= e <= 8 for e in extras)
        assert any(e > 0 for e in extras)


class TestSystemFaults:
    def test_halted_union_of_shutoff_and_gating(self):
        injector = make_injector(
            LayerShutoff(layer=3), PowerGateTransient(sms=(0,))
        )
        halted = injector.halted_sms(0)
        assert halted == set(STACK.sms_in_layer(3)) | {0}

    def test_frequency_scales_only_on_change(self):
        injector = make_injector(
            DFSTransient(frequency_scale=0.5, sms=(2,), start_cycle=10,
                         end_cycle=20)
        )
        scales = injector.frequency_scales(10)
        assert scales is not None and scales[2] == 0.5 and scales[0] == 1.0
        assert injector.frequency_scales(11) is None  # unchanged
        restored = injector.frequency_scales(20)
        assert restored is not None and np.all(restored == 1.0)


class TestReport:
    def test_report_lists_events_with_layers(self):
        injector = make_injector(
            SensorNoise(sigma_v=0.01), LayerShutoff(layer=1)
        )
        report = injector.report()
        assert report["num_events"] == 2
        layers = {e["kind"]: e["layer"] for e in report["events"]}
        assert layers == {
            "sensor_noise": "architecture", "layer_shutoff": "system"
        }
        assert all("description" in e for e in report["events"])
        assert "counters" in report
