"""Tests for the declarative fault events and FaultSchedule."""

import json

import pytest

from repro.faults import (
    ActuatorStuck,
    ControlLoopJitter,
    CRIVRPhaseLoss,
    DFSTransient,
    EVENT_TYPES,
    FaultSchedule,
    LayerShutoff,
    PDNDrift,
    PowerGateTransient,
    ProcessVariation,
    SensorDropout,
    SensorNoise,
    SensorQuantization,
    SensorStuck,
    event_from_dict,
)


def one_of_each():
    return (
        CRIVRPhaseLoss(start_cycle=10, capacity_fraction=0.3, columns=(0, 2)),
        PDNDrift(element_prefix="r_link", resistance_scale=1.5),
        ProcessVariation(sigma=0.1),
        SensorNoise(sigma_v=0.02, sms=(1, 5)),
        SensorQuantization(step_v=0.1),
        SensorStuck(value_v=0.95, sms=(3,)),
        SensorDropout(probability=0.25),
        ActuatorStuck(actuator="fii", sms=(2,), value=0.5),
        ControlLoopJitter(drop_probability=0.2, extra_latency_cycles=4),
        LayerShutoff(start_cycle=100, layer=2),
        PowerGateTransient(sms=(8, 9), start_cycle=5, end_cycle=50),
        DFSTransient(frequency_scale=0.6, sms=(0, 1)),
    )


class TestEventWindows:
    def test_active_is_half_open(self):
        event = LayerShutoff(start_cycle=10, end_cycle=20)
        assert not event.active(9)
        assert event.active(10)
        assert event.active(19)
        assert not event.active(20)

    def test_negative_start_covers_warmup(self):
        event = SensorNoise(start_cycle=-100)
        assert event.active(-50)
        assert event.active(0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="end_cycle"):
            LayerShutoff(start_cycle=10, end_cycle=10)

    def test_describe_mentions_kind_and_window(self):
        text = LayerShutoff(start_cycle=5, end_cycle=50).describe()
        assert "layer_shutoff" in text
        assert "[5, 50)" in text


class TestEventValidation:
    def test_capacity_fraction_bounds(self):
        with pytest.raises(ValueError, match="capacity_fraction"):
            CRIVRPhaseLoss(capacity_fraction=1.5)
        CRIVRPhaseLoss(capacity_fraction=0.0)  # a fully dead phase is legal

    def test_resistance_scale_positive(self):
        with pytest.raises(ValueError, match="resistance_scale"):
            PDNDrift(resistance_scale=0.0)

    def test_process_variation_scales_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessVariation(scales=(1.0,) * 15 + (-0.2,))

    def test_actuator_name_checked(self):
        with pytest.raises(ValueError, match="diws/fii/dcc"):
            ActuatorStuck(actuator="warp")

    def test_jitter_noop_rejected(self):
        with pytest.raises(ValueError, match="no-op"):
            ControlLoopJitter()

    def test_dfs_scale_bounds(self):
        with pytest.raises(ValueError, match="frequency_scale"):
            DFSTransient(frequency_scale=0.0)

    def test_dropout_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            SensorDropout(probability=1.5)

    def test_sm_lists_coerced_to_tuples(self):
        event = SensorStuck(sms=[4, 7])
        assert event.sms == (4, 7)


class TestScheduleRoundTrip:
    def test_every_kind_round_trips_through_dict(self):
        schedule = FaultSchedule(events=one_of_each(), seed=42, name="all")
        rebuilt = FaultSchedule.from_dict(schedule.to_dict())
        assert rebuilt == schedule
        assert len(rebuilt) == len(EVENT_TYPES)

    def test_round_trips_through_json_file(self, tmp_path):
        schedule = FaultSchedule(events=one_of_each(), seed=9, name="disk")
        path = schedule.to_json(tmp_path / "scenario.json")
        rebuilt = FaultSchedule.from_json(path)
        assert rebuilt == schedule
        # The file is plain JSON a human can edit.
        data = json.loads(path.read_text())
        assert data["name"] == "disk"
        assert {e["kind"] for e in data["events"]} == set(EVENT_TYPES)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            event_from_dict({"kind": "meteor_strike"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            event_from_dict({"kind": "layer_shutoff", "laser": 3})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            event_from_dict({"layer": 3})

    def test_schedule_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            FaultSchedule.from_dict(
                {"events": [], "seed": 0, "rng_state": "x"}
            )

    def test_schedule_requires_event_instances(self):
        with pytest.raises(TypeError, match="FaultEvent"):
            FaultSchedule(events=({"kind": "layer_shutoff"},))

    def test_of_kind_filters(self):
        schedule = FaultSchedule(events=one_of_each())
        assert len(schedule.of_kind("layer_shutoff")) == 1
        assert schedule.of_kind("nothing") == []
