"""Unit tests of the deterministic chaos harness (repro.faults.chaos).

The harness's value is determinism: a plan names exactly which hook
invocation (or co-sim cycle) a fault hits, fire-once tokens hold across
processes, and plans round-trip through JSON so a sweep's forked
workers replay the same schedule.  These tests pin that machinery;
end-to-end invariants live in tests/sim and the ``repro chaos`` CLI
scenarios.
"""

import errno
import json

import pytest

from repro.faults import chaos
from repro.faults.chaos import ChaosError, ChaosEvent, ChaosMonkey, ChaosPlan


class TestEvents:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            ChaosEvent("no_such_site", "kill")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChaosEvent("worker_point", "no_such_action")

    def test_dict_round_trip(self):
        event = ChaosEvent(
            "cosim_cycle", "nan_poison", at=25, lane=1, once=False
        )
        assert ChaosEvent.from_dict(event.to_dict()) == event


class TestPlans:
    def test_json_round_trip_via_save_load(self, tmp_path):
        plan = ChaosPlan("trip", [
            ChaosEvent("worker_point", "kill", at=1),
            ChaosEvent("store_append", "torn_write"),
        ])
        path = plan.save(tmp_path / "plan.json")
        loaded = ChaosPlan.load(path)
        assert loaded.name == "trip"
        assert loaded.events == plan.events
        # Saving pins a token_dir so forked workers agree on it.
        assert loaded.token_dir == str(path) + ".state"
        json.loads(path.read_text())  # the file is plain JSON


class TestMonkey:
    def test_fires_on_the_scheduled_invocation_only(self):
        monkey = ChaosMonkey(
            ChaosPlan("at", [ChaosEvent("worker_point", "kill", at=2)])
        )
        assert monkey.fire("worker_point") is None  # invocation 0
        assert monkey.fire("worker_point") is None  # invocation 1
        event = monkey.fire("worker_point")         # invocation 2
        assert event is not None and event.action == "kill"
        assert monkey.invocations("worker_point") == 3

    def test_once_event_does_not_refire(self):
        monkey = ChaosMonkey(
            ChaosPlan("once", [ChaosEvent("cosim_cycle", "nan_poison", at=5)])
        )
        assert len(monkey.take_cycle(5)) == 1
        assert monkey.take_cycle(5) == []

    def test_repeatable_event_fires_every_time(self):
        monkey = ChaosMonkey(ChaosPlan("rep", [
            ChaosEvent("cosim_cycle", "nan_poison", at=5, once=False)
        ]))
        assert len(monkey.take_cycle(5)) == 1
        assert len(monkey.take_cycle(5)) == 1

    def test_fire_once_holds_across_processes_via_tokens(self, tmp_path):
        plan = ChaosPlan.load(ChaosPlan("xproc", [
            ChaosEvent("worker_point", "kill", at=0)
        ]).save(tmp_path / "plan.json"))
        first = ChaosMonkey(plan)
        second = ChaosMonkey(plan)  # a "different process"
        assert first.fire("worker_point") is not None
        assert second.fire("worker_point") is None

    def test_cycle_schedule_names_only_cosim_cycles(self):
        monkey = ChaosMonkey(ChaosPlan("sched", [
            ChaosEvent("cosim_cycle", "nan_poison", at=7),
            ChaosEvent("cosim_cycle", "nan_poison", at=-3),
            ChaosEvent("worker_point", "kill", at=7),
        ]))
        assert monkey.cycle_schedule() == frozenset({7, -3})

    def test_sites_are_counted_independently(self):
        monkey = ChaosMonkey(ChaosPlan("indep", [
            ChaosEvent("store_append", "torn_write", at=1)
        ]))
        for _ in range(5):
            assert monkey.fire("status_write") is None
        assert monkey.fire("store_append") is None
        assert monkey.fire("store_append") is not None


class TestActivation:
    def test_activate_and_deactivate(self):
        plan = ChaosPlan("act", [ChaosEvent("worker_point", "kill")])
        chaos.activate(plan)
        assert chaos.fire("worker_point") is not None
        chaos.deactivate()
        assert chaos.current() is None
        assert chaos.fire("worker_point") is None

    def test_env_resolution_once_per_process(self, tmp_path, monkeypatch):
        path = ChaosPlan("env", [
            ChaosEvent("worker_point", "kill", at=0)
        ]).save(tmp_path / "plan.json")
        chaos.deactivate()
        monkeypatch.setenv(chaos.CHAOS_ENV, str(path))
        monkey = chaos.current()
        assert monkey is not None
        assert monkey.plan.name == "env"
        # Resolved once: clearing the env does not drop the monkey.
        monkeypatch.delenv(chaos.CHAOS_ENV)
        assert chaos.current() is monkey
        chaos.deactivate()
        assert chaos.current() is None

    def test_inactive_fire_is_a_none_check(self):
        chaos.deactivate()
        assert chaos.fire("checkpoint_write") is None


class TestSabotageWrite:
    def test_torn_write_leaves_half_and_raises_eio(self, tmp_path):
        target = tmp_path / "victim.txt"
        event = ChaosEvent("store_append", "torn_write")
        text = "0123456789abcdef\n"
        with open(target, "w") as handle:
            with pytest.raises(ChaosError) as excinfo:
                chaos.sabotage_write(event, handle, text)
        assert excinfo.value.errno == errno.EIO
        torn = target.read_text()
        assert 0 < len(torn) < len(text)
        assert text.startswith(torn)

    def test_disk_full_raises_before_writing(self, tmp_path):
        target = tmp_path / "victim.txt"
        event = ChaosEvent("store_append", "disk_full")
        with open(target, "w") as handle:
            with pytest.raises(ChaosError) as excinfo:
                chaos.sabotage_write(event, handle, "data\n")
        assert excinfo.value.errno == errno.ENOSPC
        assert target.read_text() == ""

    def test_chaos_error_is_an_oserror(self):
        # Retry/cleanup paths must treat injected failures like real IO
        # errors without special-casing.
        assert issubclass(ChaosError, OSError)

    def test_nan_poison_cannot_sabotage_a_write(self, tmp_path):
        event = ChaosEvent("cosim_cycle", "nan_poison")
        with open(tmp_path / "victim.txt", "w") as handle:
            with pytest.raises(ValueError):
                chaos.sabotage_write(event, handle, "data\n")
