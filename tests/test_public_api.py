"""Smoke tests of the package's public surface."""

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_configs_exported(self):
        assert repro.DEFAULT_CONFIG.gpu.num_sms == 16

    def test_quick_cosim(self):
        result = repro.quick_cosim(benchmark="heartwall", cycles=300)
        assert result.num_cycles == 300
        assert "heartwall" in result.summary()
        assert 0.5 < result.min_voltage <= result.max_voltage < 2.0


class TestSubpackageSurfaces:
    def test_pdn_exports(self):
        from repro.pdn import (
            AreaModel,
            ImpedanceAnalyzer,
            L2StackConfig,
            SwitchLevelLadder,
            build_stacked_pdn,
            chip_interface_overhead,
        )

        assert callable(build_stacked_pdn)

    def test_core_exports(self):
        from repro.core import (
            StackedGridModel,
            VSAwareHypervisor,
            VoltageSmoothingController,
            control_latency_cycles,
        )

        assert control_latency_cycles() == 60

    def test_sim_exports(self):
        from repro.sim import (
            PDS_CONFIGS,
            replay_trace,
            run_cosim,
            run_dfs_experiment,
        )

        assert len(PDS_CONFIGS) == 4

    def test_analysis_exports(self):
        from repro.analysis import (
            format_table,
            imbalance_spectrum,
            noise_box_stats,
        )

        assert callable(format_table)

    def test_workloads_exports(self):
        from repro.workloads import BENCHMARK_NAMES, PowerTrace

        assert len(BENCHMARK_NAMES) == 12

    def test_circuits_exports(self):
        from repro.circuits import SolverStats, TransientSolver

        assert SolverStats().steps == 0

    def test_telemetry_exports(self):
        from repro.telemetry import (
            MetricChannel,
            Telemetry,
            load_manifest,
            render_manifest,
            to_jsonable,
            write_run,
        )

        assert callable(write_run)
        assert Telemetry().enabled
