"""Table I system configuration, asserted row by row."""

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    GPUConfig,
    PowerConfig,
    StackConfig,
    SystemConfig,
)


class TestTableIRows:
    """Every row of Table I."""

    def test_pcb_voltage(self):
        assert DEFAULT_CONFIG.stack.board_voltage == 4.1

    def test_sm_voltage(self):
        assert DEFAULT_CONFIG.stack.sm_voltage == 1.0

    def test_number_of_sms(self):
        assert DEFAULT_CONFIG.gpu.num_sms == 16

    def test_sm_clock(self):
        assert DEFAULT_CONFIG.gpu.sm_clock_hz == 700e6

    def test_threads_per_sm(self):
        assert DEFAULT_CONFIG.gpu.threads_per_sm == 1536

    def test_threads_per_warp(self):
        assert DEFAULT_CONFIG.gpu.threads_per_warp == 32

    def test_registers_per_sm(self):
        assert DEFAULT_CONFIG.gpu.registers_per_sm_kb == 128

    def test_memory_controller(self):
        assert DEFAULT_CONFIG.gpu.memory_controller == "FR-FCFS"

    def test_shared_memory(self):
        assert DEFAULT_CONFIG.gpu.shared_memory_kb == 48

    def test_memory_bandwidth(self):
        assert DEFAULT_CONFIG.gpu.memory_bandwidth_gbs == 179.2

    def test_memory_channels(self):
        assert DEFAULT_CONFIG.gpu.memory_channels == 6

    def test_warp_scheduler(self):
        assert DEFAULT_CONFIG.gpu.warp_scheduler == "GTO"

    def test_stack_partition(self):
        # VDD..3/4VDD: SM1-4; ...; 1/4VDD..GND: SM13-16.
        assert DEFAULT_CONFIG.stack.num_layers == 4
        assert DEFAULT_CONFIG.stack.num_columns == 4

    def test_process_technology(self):
        assert DEFAULT_CONFIG.gpu.process_technology_nm == 40


class TestDerivedQuantities:
    def test_max_warps_per_sm(self):
        assert DEFAULT_CONFIG.gpu.warps_per_sm_max == 48

    def test_cycle_time(self):
        assert DEFAULT_CONFIG.gpu.cycle_time_s == pytest.approx(1 / 700e6)

    def test_nominal_layer_voltage(self):
        assert DEFAULT_CONFIG.stack.nominal_layer_voltage == pytest.approx(
            1.025
        )

    def test_min_safe_voltage_from_guardband(self):
        # 0.2 V guardband (the commercial GPU margin the paper cites).
        assert DEFAULT_CONFIG.stack.min_safe_voltage == pytest.approx(0.8)

    def test_sm_leakage(self):
        power = PowerConfig()
        assert power.sm_leakage_power_w == pytest.approx(1.2)
        assert power.sm_dynamic_peak_w == pytest.approx(6.8)
        assert power.grid_peak_power_w(16) == pytest.approx(128.0)


class TestStackIndexing:
    def test_flat_index_roundtrip(self):
        stack = StackConfig()
        for layer in range(4):
            for column in range(4):
                sm = stack.sm_index(layer, column)
                assert stack.layer_column(sm) == (layer, column)

    def test_paper_sm_numbering(self):
        stack = StackConfig()
        # Paper: SM1 is in the top layer (layer 3 here), first column.
        assert stack.paper_sm_number(3, 0) == 1
        assert stack.paper_sm_number(3, 3) == 4
        # SM13-16 in the bottom layer.
        assert stack.paper_sm_number(0, 0) == 13
        assert stack.paper_sm_number(0, 3) == 16

    def test_layer_and_column_listings(self):
        stack = StackConfig()
        assert stack.sms_in_layer(0) == [0, 1, 2, 3]
        assert stack.sms_in_column(0) == [0, 4, 8, 12]

    @pytest.mark.parametrize(
        "method,args",
        [
            ("sm_index", (4, 0)),
            ("sm_index", (0, 4)),
            ("layer_column", (16,)),
            ("sms_in_layer", (4,)),
            ("sms_in_column", (-1,)),
            ("paper_sm_number", (4, 0)),
        ],
    )
    def test_bounds_checked(self, method, args):
        with pytest.raises(ValueError):
            getattr(StackConfig(), method)(*args)


class TestSystemConsistency:
    def test_stack_must_match_gpu(self):
        with pytest.raises(ValueError, match="SMs"):
            SystemConfig(
                gpu=GPUConfig(num_sms=8),
                stack=StackConfig(num_layers=4, num_columns=4),
            )

    def test_default_consistent(self):
        SystemConfig()  # does not raise
