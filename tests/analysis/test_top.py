"""``render_top`` — the deterministic frame behind ``repro top``."""

import json

from repro.analysis.top import render_top
from repro.sim.cosim import CosimConfig
from repro.sim.explore import run_exploration
from repro.sim.sweep import SweepRunner, expand_grid
from repro.telemetry.live import LiveRun, atomic_write_json


def fabricate_run_dir(tmp_path, now=1000.0):
    """A fully controlled run directory: every timestamp pinned."""
    atomic_write_json(tmp_path / "status.json", {
        "updated_unix": now - 2.0,
        "command": "sweep",
        "counters": {
            "sweep_points_done": 3,
            "sweep_points_failed": 1,
            "sweep_points_retried": 1,
        },
        "gauges": {
            "sweep_points_total": 8,
            "sweep_workers": 2,
            "sweep_wave": 2,
            "sweep_eta_s": 12.0,
        },
        "histograms": {},
        "last_checkpoint": "ckpt.json",
    })
    atomic_write_json(tmp_path / "heartbeats" / "worker-slot-0.json", {
        "worker": "slot-0", "pid": 41, "updated_unix": now - 1.0,
        "points_done": 2, "points_failed": 0, "points_retried": 0,
        "lane_cycles": 2000, "lane_cycles_per_s": 1000.0, "busy_s": 2.0,
        "eta_s": 4.0, "last_checkpoint": "ckpt.json",
        "current": ["hotspot #4"],
    })
    atomic_write_json(tmp_path / "heartbeats" / "worker-slot-1.json", {
        "worker": "slot-1", "pid": 42, "updated_unix": now - 60.0,
        "points_done": 1, "points_failed": 1, "points_retried": 1,
        "lane_cycles": 1000, "lane_cycles_per_s": 500.0, "busy_s": 2.0,
        "eta_s": None, "last_checkpoint": None, "current": [],
    })
    with open(tmp_path / "events.jsonl", "w") as handle:
        for kind in ("sweep_start", "sweep_point", "sweep_retry_wave"):
            handle.write(json.dumps({"t_s": 1.5, "kind": kind}) + "\n")
    flight = tmp_path / "flight"
    flight.mkdir()
    (flight / "000.json").write_text("{}\n")
    return tmp_path


class TestRenderFabricated:
    def test_deterministic_for_fixed_state_and_clock(self, tmp_path):
        fabricate_run_dir(tmp_path)
        first = render_top(tmp_path, now_unix=1000.0)
        second = render_top(tmp_path, now_unix=1000.0)
        assert first == second

    def test_frame_contents(self, tmp_path):
        fabricate_run_dir(tmp_path)
        frame = render_top(tmp_path, now_unix=1000.0, stale_after_s=15.0)
        assert "sweep | status updated 2s ago" in frame
        assert "4/8 (50%)" in frame
        assert "1 failed" in frame
        assert "1 retried" in frame
        assert "retry wave 2" in frame
        assert "checkpoint: ckpt.json" in frame
        # Worker rows: slot-0 fresh and busy, slot-1 stale.
        assert "slot-0" in frame and "hotspot #4" in frame
        assert "slot-1 [STALE]" in frame
        assert "slot-0 [STALE]" not in frame
        assert "flight recorder: 1 dump(s)" in frame
        assert "sweep_retry_wave" in frame

    def test_stale_threshold_respected(self, tmp_path):
        fabricate_run_dir(tmp_path)
        lenient = render_top(tmp_path, now_unix=1000.0, stale_after_s=120.0)
        assert "[STALE]" not in lenient

    def test_empty_directory_renders_gracefully(self, tmp_path):
        frame = render_top(tmp_path, now_unix=1000.0)
        assert "no status.json yet" in frame

    def test_events_tail_limited(self, tmp_path):
        fabricate_run_dir(tmp_path)
        frame = render_top(tmp_path, now_unix=1000.0, events_tail=1)
        assert "sweep_retry_wave" in frame  # the newest survives
        assert "sweep_start" not in frame


class TestRenderRealRuns:
    def test_covers_a_real_sweep_run(self, tmp_path):
        base = CosimConfig(cycles=60, warmup_cycles=10)
        points = expand_grid(["hotspot", "bfs"], base_seed=7)
        live = LiveRun(tmp_path, interval_s=0.0)
        SweepRunner(points, base, max_workers=2).run(live=live)
        live.close()
        import time

        frame = render_top(tmp_path, now_unix=time.time())
        # Every worker that heartbeat must be rendered.
        from repro.telemetry.live import read_heartbeats

        beats = read_heartbeats(tmp_path)
        assert beats
        for beat in beats:
            assert str(beat["worker"]) in frame
        assert "2/2 (100%)" in frame
        # A frame is reproducible for a fixed clock even on live dirs.
        assert render_top(tmp_path, now_unix=5e9) == render_top(
            tmp_path, now_unix=5e9
        )

    def test_covers_a_real_explore_run(self, tmp_path):
        live = LiveRun(tmp_path, interval_s=0.0)
        run_exploration(
            ["hotspot"],
            {"cr_ivr_area_mm2": [52.9, 105.8]},
            base_config=CosimConfig(cycles=80, warmup_cycles=16),
            store_path=tmp_path / "store.jsonl",
            rounds=2,
            max_workers=1,
            live=live,
        )
        live.close()
        import time

        frame = render_top(tmp_path, now_unix=time.time())
        assert "explore round 2/2" in frame
        assert "cache hit rate" in frame
