"""Tests for manifest regression comparison (``repro compare``)."""

import json

import pytest

from repro.analysis.compare import (
    DEFAULT_THRESHOLDS,
    Threshold,
    compare_manifests,
    load_thresholds,
    metric_values,
    render_compare,
)


def manifest(metrics=None, noise_summary=None, faults_summary=None,
             run_id="run-a"):
    doc = {"run_id": run_id, "metrics": dict(metrics or {})}
    if noise_summary is not None:
        doc["noise"] = {"summary": dict(noise_summary)}
    if faults_summary is not None:
        doc["faults"] = {"summary": dict(faults_summary)}
    return doc


BASE = manifest(
    metrics={
        "benchmark": "hotspot",  # non-numeric: skipped
        "min_voltage_v": 0.86,
        "pde": 0.92,
        "throughput_ipc": 12.0,
    },
    noise_summary={"droop_event_count": 0.0, "band_control_vrms": 0.009},
)


class TestMetricValues:
    def test_flattens_headline_and_noise(self):
        values = metric_values(BASE)
        assert values["min_voltage_v"] == 0.86
        assert values["noise.droop_event_count"] == 0.0
        assert "benchmark" not in values

    def test_missing_sections_tolerated(self):
        assert metric_values({"run_id": "x"}) == {}

    def test_flattens_faults_summary(self):
        doc = manifest(
            metrics={"pde": 0.9},
            faults_summary={"verdict_code": 1, "min_voltage_v": 0.82},
        )
        values = metric_values(doc)
        assert values["faults.verdict_code"] == 1
        assert values["faults.min_voltage_v"] == 0.82

    def test_flattens_stage_timings(self):
        doc = manifest(metrics={"pde": 0.9})
        doc["timings_s"] = {"gpu_model": 0.02, "transient_solve": 0.05}
        values = metric_values(doc)
        assert values["timing.gpu_model"] == 0.02
        assert values["timing.transient_solve"] == 0.05
        assert "timing.gpu_model" in DEFAULT_THRESHOLDS


class TestCompare:
    def test_identical_manifests_zero_regressions(self):
        report = compare_manifests(BASE, BASE)
        assert report.ok
        assert report.regressions == []
        assert all(r.status in ("ok", "untracked") for r in report.rows)

    def test_regression_when_voltage_drops_beyond_tolerance(self):
        worse = manifest(
            metrics={**BASE["metrics"], "min_voltage_v": 0.80},
            noise_summary=BASE["noise"]["summary"],
        )
        report = compare_manifests(BASE, worse)
        assert not report.ok
        names = [r.name for r in report.regressions]
        assert names == ["min_voltage_v"]

    def test_drift_within_tolerance_is_ok(self):
        close = manifest(
            metrics={**BASE["metrics"], "min_voltage_v": 0.857},
            noise_summary=BASE["noise"]["summary"],
        )
        assert compare_manifests(BASE, close).ok

    def test_improvement_is_not_a_regression(self):
        better = manifest(
            metrics={**BASE["metrics"], "min_voltage_v": 0.91},
            noise_summary=BASE["noise"]["summary"],
        )
        report = compare_manifests(BASE, better)
        assert report.ok
        row = next(r for r in report.rows if r.name == "min_voltage_v")
        assert row.status == "improved"

    def test_new_droop_event_regresses(self):
        droopy = manifest(
            metrics=BASE["metrics"],
            noise_summary={
                **BASE["noise"]["summary"], "droop_event_count": 1.0,
            },
        )
        report = compare_manifests(BASE, droopy)
        assert [r.name for r in report.regressions] == [
            "noise.droop_event_count"
        ]

    def test_gated_metric_missing_from_candidate_regresses(self):
        gone = manifest(
            metrics={
                k: v for k, v in BASE["metrics"].items()
                if k != "min_voltage_v"
            },
            noise_summary=BASE["noise"]["summary"],
        )
        report = compare_manifests(BASE, gone)
        row = next(r for r in report.rows if r.name == "min_voltage_v")
        assert row.status == "MISSING"
        assert not report.ok

    def test_untracked_metric_never_gates(self):
        base = manifest(metrics={"weird_metric": 1.0})
        cand = manifest(metrics={"weird_metric": 999.0})
        report = compare_manifests(base, cand)
        assert report.ok
        assert report.rows[0].status == "untracked"

    def test_new_metric_in_candidate_is_informational(self):
        cand = manifest(
            metrics={**BASE["metrics"], "pde": 0.92, "extra": 5.0},
            noise_summary=BASE["noise"]["summary"],
        )
        report = compare_manifests(BASE, cand)
        assert report.ok
        row = next(r for r in report.rows if r.name == "extra")
        assert row.status == "new"

    def test_fault_verdict_code_regression_gates(self):
        """survived (0) -> violated (2) under the same fault scenario is
        a zero-tolerance regression; the reverse is an improvement."""
        good = manifest(
            metrics={"pde": 0.9},
            faults_summary={"verdict_code": 0, "min_voltage_v": 0.85},
        )
        bad = manifest(
            metrics={"pde": 0.9},
            faults_summary={"verdict_code": 2, "min_voltage_v": 0.70},
        )
        report = compare_manifests(good, bad)
        assert not report.ok
        names = [r.name for r in report.regressions]
        assert "faults.verdict_code" in names
        assert "faults.min_voltage_v" in names
        assert compare_manifests(bad, good).ok

    def test_nan_candidate_regresses_every_gated_metric(self):
        """A NaN compares False against everything, which used to fall
        through every gate to 'ok' — a broken run must fail the gate."""
        nan = float("nan")
        broken = manifest(
            metrics={
                **BASE["metrics"],
                "min_voltage_v": nan, "pde": nan, "throughput_ipc": nan,
            },
            noise_summary=BASE["noise"]["summary"],
        )
        report = compare_manifests(BASE, broken)
        assert not report.ok
        regressed = {r.name for r in report.regressions}
        assert {"min_voltage_v", "pde", "throughput_ipc"} <= regressed

    def test_nan_base_regresses_too(self):
        broken_base = manifest(
            metrics={**BASE["metrics"], "min_voltage_v": float("nan")},
            noise_summary=BASE["noise"]["summary"],
        )
        report = compare_manifests(broken_base, BASE)
        row = next(r for r in report.rows if r.name == "min_voltage_v")
        assert row.status == "REGRESSED"
        assert not report.ok

    def test_infinite_gated_value_regresses(self):
        inf = manifest(
            metrics={**BASE["metrics"], "throughput_ipc": float("inf")},
            noise_summary=BASE["noise"]["summary"],
        )
        report = compare_manifests(BASE, inf)
        assert [r.name for r in report.regressions] == ["throughput_ipc"]

    def test_nan_on_untracked_metric_does_not_gate(self):
        base = manifest(metrics={"weird_metric": 1.0})
        cand = manifest(metrics={"weird_metric": float("nan")})
        report = compare_manifests(base, cand)
        assert report.ok
        assert report.rows[0].status == "untracked"

    def test_stable_direction_flags_both_ways(self):
        gates = {"mean_power_w": Threshold("stable", rel_tol=0.05)}
        base = manifest(metrics={"mean_power_w": 60.0})
        up = manifest(metrics={"mean_power_w": 70.0})
        down = manifest(metrics={"mean_power_w": 50.0})
        assert not compare_manifests(base, up, gates).ok
        assert not compare_manifests(base, down, gates).ok
        assert compare_manifests(base, base, gates).ok


class TestThreshold:
    def test_tolerance_is_max_of_abs_and_rel(self):
        t = Threshold("higher", abs_tol=0.1, rel_tol=0.01)
        assert t.tolerance(5.0) == pytest.approx(0.1)
        assert t.tolerance(100.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Threshold("sideways")
        with pytest.raises(ValueError):
            Threshold("higher", abs_tol=-1.0)


class TestLoadThresholds:
    def test_overrides_merge_over_defaults(self, tmp_path):
        path = tmp_path / "thresholds.json"
        path.write_text(json.dumps({
            "min_voltage_v": {"abs_tol": 0.5},
            "brand_new": {"better": "lower", "rel_tol": 0.1},
            "pde": None,
        }))
        merged = load_thresholds(path)
        # Overridden tolerance, direction kept from the default gate.
        assert merged["min_voltage_v"].abs_tol == 0.5
        assert merged["min_voltage_v"].better == "higher"
        assert merged["brand_new"].better == "lower"
        assert "pde" not in merged
        # Untouched defaults survive.
        assert merged["noise.droop_event_count"] == DEFAULT_THRESHOLDS[
            "noise.droop_event_count"
        ]

    def test_underscore_keys_are_comments(self, tmp_path):
        path = tmp_path / "thresholds.json"
        path.write_text(json.dumps({
            "_comment": "explains the file",
            "min_voltage_v": {"abs_tol": 0.25},
        }))
        merged = load_thresholds(path)
        assert "_comment" not in merged
        assert merged["min_voltage_v"].abs_tol == 0.25

    def test_bad_shapes_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(["not", "a", "mapping"]))
        with pytest.raises(ValueError):
            load_thresholds(path)
        path.write_text(json.dumps({"x": {"unknown_key": 1}}))
        with pytest.raises(ValueError):
            load_thresholds(path)


class TestRender:
    def test_mentions_verdict_and_metrics(self):
        text = render_compare(compare_manifests(BASE, BASE))
        assert "0 regressions" in text
        assert "min_voltage_v" in text

    def test_lists_regressed_metric_names(self):
        worse = manifest(
            metrics={**BASE["metrics"], "min_voltage_v": 0.5},
            noise_summary=BASE["noise"]["summary"],
        )
        text = render_compare(compare_manifests(BASE, worse))
        assert "1 regression(s): min_voltage_v" in text
        assert "REGRESSED" in text
