"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    IMBALANCE_BUCKET_LABELS,
    BoxStats,
    cumulative_within,
    imbalance_distribution,
    net_energy_saving,
    noise_box_stats,
    performance_penalty,
)
from repro.config import StackConfig


class TestBoxStats:
    def test_ordering(self):
        rng = np.random.default_rng(1)
        stats = noise_box_stats(rng.normal(1.0, 0.05, (100, 16)))
        assert (
            stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        )

    def test_iqr(self):
        b = BoxStats(0.0, 0.25, 0.5, 0.75, 1.0)
        assert b.iqr == pytest.approx(0.5)
        assert b.as_tuple() == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            noise_box_stats(np.array([]))

    def test_constant_distribution(self):
        stats = noise_box_stats(np.full((10, 4), 1.0))
        assert stats.minimum == stats.maximum == 1.0


class TestPerformancePenalty:
    def test_no_slowdown(self):
        assert performance_penalty(10.0, 10.0) == 0.0

    def test_faster_clamps_to_zero(self):
        assert performance_penalty(10.0, 11.0) == 0.0

    def test_three_percent(self):
        assert performance_penalty(10.0, 10.0 / 1.03) == pytest.approx(0.03)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            performance_penalty(0.0, 1.0)
        with pytest.raises(ValueError):
            performance_penalty(1.0, 0.0)


class TestNetEnergySaving:
    def test_pure_pde_gain(self):
        # No penalty: saving is just the PDE ratio improvement.
        saving = net_energy_saving(0.80, 0.923, penalty=0.0)
        assert saving == pytest.approx(1 - 0.80 / 0.923)

    def test_penalty_erodes_saving(self):
        clean = net_energy_saving(0.80, 0.923, penalty=0.0)
        penalized = net_energy_saving(0.80, 0.923, penalty=0.04)
        assert penalized < clean

    def test_paper_band(self):
        """Fig. 14: with 2-4% penalty, net savings land in 10-15%."""
        for penalty in (0.02, 0.03, 0.04):
            saving = net_energy_saving(
                0.80, 0.923, penalty, extra_dynamic_fraction=0.01
            )
            assert 0.08 < saving < 0.16

    def test_validation(self):
        with pytest.raises(ValueError):
            net_energy_saving(0.0, 0.9, 0.0)
        with pytest.raises(ValueError):
            net_energy_saving(0.8, 0.9, -0.1)
        with pytest.raises(ValueError):
            net_energy_saving(0.8, 0.9, 0.0, leakage_fraction=1.0)


class TestImbalanceDistribution:
    def test_balanced_trace_all_in_lowest_bucket(self):
        trace = np.full((50, 16), 4.0)
        dist = imbalance_distribution(trace)
        assert dist["0-10% imbalance"] == pytest.approx(1.0)

    def test_shares_sum_to_one(self):
        rng = np.random.default_rng(2)
        dist = imbalance_distribution(rng.uniform(0, 8, (100, 16)))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_extreme_imbalance_in_top_bucket(self):
        trace = np.zeros((10, 16))
        trace[:, :4] = 8.0  # bottom layer at peak, layer above at zero
        dist = imbalance_distribution(trace)
        assert dist[">40% imbalance"] > 0.3

    def test_buckets_match_paper_bins(self):
        assert IMBALANCE_BUCKET_LABELS == (
            "0-10% imbalance",
            "10-20% imbalance",
            "20-40% imbalance",
            ">40% imbalance",
        )

    def test_cumulative_within(self):
        dist = {"a": 0.5, "b": 0.43, "c": 0.07}
        assert cumulative_within(dist, ["a", "b"]) == pytest.approx(0.93)

    def test_validation(self):
        with pytest.raises(ValueError):
            imbalance_distribution(np.ones((5, 8)))
        with pytest.raises(ValueError):
            imbalance_distribution(np.ones((5, 16)), peak_sm_power_w=0.0)

    def test_custom_stack(self):
        stack = StackConfig(num_layers=2, num_columns=2, board_voltage=2.0)
        trace = np.array([[0.0, 0.0, 8.0, 8.0]])  # top layer at peak
        dist = imbalance_distribution(trace, stack)
        assert dist[">40% imbalance"] == pytest.approx(1.0)


class TestMetricProperties:
    """Property-based invariants of the Fig. 14 / Fig. 17 accounting."""

    @given(
        trace=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=16, max_size=16,
            ),
            min_size=1, max_size=12,
        ),
        peak=st.floats(min_value=0.5, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_distribution_shares_sum_to_one(self, trace, peak):
        """For any finite non-negative trace the bucket shares form a
        probability distribution: every pair lands in exactly one of
        the paper's bins."""
        dist = imbalance_distribution(
            np.array(trace), peak_sm_power_w=peak
        )
        assert all(0.0 <= share <= 1.0 for share in dist.values())
        assert sum(dist.values()) == pytest.approx(1.0)

    @given(
        pde_baseline=st.floats(min_value=0.05, max_value=1.0),
        pde_stacked=st.floats(min_value=0.05, max_value=1.0),
        leakage=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_zero_penalty_closed_form(self, pde_baseline, pde_stacked,
                                      leakage):
        """At penalty = 0 and extra_dynamic_fraction = 0 the stacked
        chip energy equals the baseline's, so the saving collapses to
        the closed form ``1 - pde_baseline / pde_stacked`` regardless
        of the leakage split."""
        saving = net_energy_saving(
            pde_baseline, pde_stacked, penalty=0.0,
            leakage_fraction=leakage, extra_dynamic_fraction=0.0,
        )
        assert saving == pytest.approx(
            1.0 - pde_baseline / pde_stacked, rel=1e-12, abs=1e-12
        )
