"""Tests for Pareto dominance, fronts and ranks (repro.analysis.pareto).

The frontier of a fixed point set is a *set* property — independent of
how the points were ordered or discovered — and the exploration service
leans on that for artifact determinism.  The hypothesis test pins it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pareto import (
    DEFAULT_OBJECTIVES,
    MAX,
    MIN,
    Objective,
    dominates,
    pareto_front,
    pareto_ranks,
    render_pareto,
)


def row(area, pde, viol, benchmark="bfs", index=0):
    return {
        "benchmark": benchmark,
        "index": index,
        "cr_ivr_area_mm2": area,
        "pde": pde,
        "guardband_violation_v": viol,
    }


class TestObjective:
    def test_rejects_unknown_sense(self):
        with pytest.raises(ValueError, match="sense"):
            Objective("pde", "sideways")

    def test_ascending_flips_max_objectives(self):
        assert Objective("pde", MAX).ascending(0.9) == -0.9
        assert Objective("area", MIN).ascending(0.9) == 0.9

    def test_default_objectives_match_paper_axes(self):
        names = {o.name: o.sense for o in DEFAULT_OBJECTIVES}
        assert names == {
            "cr_ivr_area_mm2": MIN,
            "pde": MAX,
            "guardband_violation_v": MIN,
        }


class TestDominates:
    def test_better_everywhere_dominates(self):
        assert dominates(row(50, 0.95, 0.0), row(200, 0.90, 0.01))

    def test_tie_does_not_dominate(self):
        a, b = row(50, 0.95, 0.0), row(50, 0.95, 0.0)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_is_incomparable(self):
        cheap = row(50, 0.90, 0.0)
        efficient = row(200, 0.95, 0.0)
        assert not dominates(cheap, efficient)
        assert not dominates(efficient, cheap)

    def test_missing_objective_is_an_error(self):
        with pytest.raises(ValueError, match="missing objective"):
            dominates({"pde": 1.0}, row(50, 0.9, 0.0))


class TestParetoFront:
    def test_dominated_rows_are_dropped(self):
        rows = [
            row(50, 0.95, 0.0, index=0),
            row(200, 0.95, 0.0, index=1),   # strictly worse area
            row(200, 0.97, 0.0, index=2),   # pays area for pde: kept
        ]
        front = pareto_front(rows)
        assert [r["index"] for r in front] == [0, 2]

    def test_objective_ties_are_both_kept(self):
        rows = [row(50, 0.95, 0.0, index=0), row(50, 0.95, 0.0, index=1)]
        assert len(pareto_front(rows)) == 2

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_output_rows_are_copies(self):
        rows = [row(50, 0.95, 0.0)]
        front = pareto_front(rows)
        front[0]["pde"] = -1
        assert rows[0]["pde"] == 0.95


class TestParetoRanks:
    def test_layered_ranks(self):
        rows = [
            row(50, 0.95, 0.0, index=0),   # frontier
            row(60, 0.90, 0.0, index=1),   # dominated by 0 only
            row(70, 0.85, 0.0, index=2),   # dominated by 0 and 1
        ]
        assert pareto_ranks(rows) == [0, 1, 2]

    def test_rank_zero_is_exactly_the_front(self):
        rows = [
            row(50, 0.90, 0.0, index=0),
            row(200, 0.95, 0.0, index=1),
            row(210, 0.94, 0.0, index=2),
        ]
        ranks = pareto_ranks(rows)
        front_ids = {r["index"] for r in pareto_front(rows)}
        assert {
            r["index"] for r, k in zip(rows, ranks) if k == 0
        } == front_ids


# Small float grids keep duplicate objective vectors likely, which is
# exactly the tie-handling corner worth fuzzing.
_VALUES = st.sampled_from([0.0, 0.5, 1.0, 2.0])
_ROWS = st.lists(
    st.tuples(_VALUES, _VALUES, _VALUES), min_size=1, max_size=12
).map(
    lambda triples: [
        row(a, p, v, index=i) for i, (a, p, v) in enumerate(triples)
    ]
)


class TestOrderInvariance:
    @settings(max_examples=60, deadline=None)
    @given(rows=_ROWS, seed=st.integers(0, 2**16))
    def test_front_is_invariant_to_evaluation_order(self, rows, seed):
        import random

        shuffled = list(rows)
        random.Random(seed).shuffle(shuffled)
        assert pareto_front(shuffled) == pareto_front(rows)

    @settings(max_examples=60, deadline=None)
    @given(rows=_ROWS)
    def test_front_members_are_mutually_non_dominated(self, rows):
        front = pareto_front(rows)
        assert front  # a non-empty finite set always has a frontier
        for a in front:
            assert not any(dominates(b, a) for b in rows)


class TestRender:
    def test_render_lists_objectives_and_knobs(self):
        front = [dict(row(50, 0.95, 0.0), overrides={"seed": 7})]
        text = render_pareto(front)
        assert "cr_ivr_area_mm2 (min)" in text
        assert "pde (max)" in text
        assert "seed=7" in text
        assert "(1 points)" in text
