"""Tests for the noise observatory (bands, droop log, ledger, layers)."""

import json

import numpy as np
import pytest

from repro.analysis.observatory import (
    Band,
    band_decomposition,
    compute_noise_report,
    default_bands,
    droop_event_log,
    layer_imbalance_summary,
    pde_loss_ledger,
    render_noise_report,
)
from repro.config import StackConfig
from repro.sim.cosim import CosimConfig, CosimResult, run_cosim
from repro.workloads.traces import PowerTrace

FS = 700e6
STACK = StackConfig()


def synthetic_result(sm_voltages, per_sm_power, controller_power_w=1.634e-3):
    """Wrap raw waveforms in a CosimResult for the observatory."""
    cycles = sm_voltages.shape[0]
    return CosimResult(
        benchmark="synthetic",
        power_trace=PowerTrace(per_sm_power, frequency_hz=FS),
        sm_voltages=sm_voltages,
        supply_current=np.full(cycles, 60.0),
        stack=STACK,
        instructions=cycles * 16,
        fake_instructions=0,
        throttled_cycles=0,
        controller_power_w=controller_power_w,
    )


@pytest.fixture(scope="module")
def hotspot_run():
    """One short default-configuration hotspot co-simulation."""
    return run_cosim(
        "hotspot", CosimConfig(cycles=600, warmup_cycles=150)
    )


class TestDefaultBands:
    def test_three_increasing_bands(self):
        bands = default_bands(FS)
        assert [b.name for b in bands] == ["control", "mid", "resonance"]
        edges = [bands[0].low_hz] + [b.high_hz for b in bands]
        assert edges == sorted(edges)
        assert bands[0].low_hz == 0.0

    def test_control_edge_is_loop_bandwidth(self):
        # One 60-cycle loop turnaround at 700 MHz.
        bands = default_bands(FS)
        assert bands[0].high_hz == pytest.approx(FS / 60)

    def test_resonance_band_brackets_peak(self):
        bands = default_bands(FS)
        assert bands[2].low_hz < 70e6 < bands[2].high_hz

    def test_degenerate_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            default_bands(1e6)  # Nyquist far below the resonance layout

    def test_band_validates_edges(self):
        with pytest.raises(ValueError):
            Band("bad", 10.0, 5.0)


class TestBandDecomposition:
    def test_attribution_follows_the_stimulus(self):
        """A global tone in the control band and a residual tone in the
        resonance band must attribute their bands accordingly."""
        cycles = 4096
        t = np.arange(cycles) / FS
        power = np.full((cycles, 16), 4.0)
        power += np.sin(2 * np.pi * 5e6 * t)[:, None]  # global, low band
        power[:, 0] += 0.8 * np.sin(2 * np.pi * 70e6 * t)  # residual @ peak
        voltages = np.full((cycles, 16), 1.0)
        voltages[:, 0] -= 0.02 * np.sin(2 * np.pi * 70e6 * t)
        rows = band_decomposition(
            voltages, power, FS, default_bands(FS), STACK
        )
        by_name = {row["band"]: row for row in rows}
        assert by_name["control"]["component_share"]["global"] > 0.9
        assert by_name["resonance"]["component_share"]["residual"] > 0.9
        # The voltage RMS lands in the band its tone occupies.
        assert (
            by_name["resonance"]["voltage_rms_v"]
            > 10 * by_name["control"]["voltage_rms_v"]
        )

    def test_quiet_trace_zero_shares(self):
        rows = band_decomposition(
            np.full((256, 16), 1.0), np.full((256, 16), 4.0),
            FS, default_bands(FS), STACK,
        )
        for row in rows:
            assert row["voltage_rms_v"] == pytest.approx(0.0, abs=1e-12)
            assert sum(row["component_share"].values()) == 0.0


class TestDroopEventLog:
    def make_voltages(self, cycles=200, level=1.0):
        return np.full((cycles, 16), level)

    def test_no_events_above_guardband(self):
        assert droop_event_log(self.make_voltages(), 0.8, STACK) == []

    def test_one_event_with_depth_and_location(self):
        v = self.make_voltages()
        v[50:60, 5] = 0.75
        v[54, 5] = 0.70  # the event minimum
        events = droop_event_log(v, 0.8, STACK)
        assert len(events) == 1
        e = events[0]
        assert e.start_cycle == 50
        assert e.duration_cycles == 10
        assert e.worst_sm == 5
        assert e.layer == STACK.layer_column(5)[0]
        assert e.min_voltage_v == pytest.approx(0.70)
        assert e.depth_v == pytest.approx(0.10)

    def test_separate_events_not_merged(self):
        v = self.make_voltages()
        v[10:12, 0] = 0.7
        v[30:35, 9] = 0.65
        events = droop_event_log(v, 0.8, STACK)
        assert [e.start_cycle for e in events] == [10, 30]
        assert [e.duration_cycles for e in events] == [2, 5]
        assert [e.worst_sm for e in events] == [0, 9]

    def test_adjacent_cycles_merge_across_sms(self):
        """Consecutive below-guardband cycles are one event even when a
        different SM is the worst one each cycle."""
        v = self.make_voltages()
        v[20, 1] = 0.75
        v[21, 2] = 0.70
        events = droop_event_log(v, 0.8, STACK)
        assert len(events) == 1
        assert events[0].duration_cycles == 2
        assert events[0].worst_sm == 2

    def test_event_touching_trace_end(self):
        v = self.make_voltages()
        v[190:, 3] = 0.7
        events = droop_event_log(v, 0.8, STACK)
        assert events[-1].start_cycle == 190
        assert events[-1].duration_cycles == 10

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            droop_event_log(np.ones((10, 8)), 0.8, STACK)


class TestLossLedger:
    def test_closes_for_default_hotspot_run(self, hotspot_run):
        """Acceptance: input minus the loss terms equals delivered
        power within 1 % relative error."""
        ledger = pde_loss_ledger(hotspot_run)
        assert ledger.closes(tolerance=0.01)
        assert ledger.closure_rel_error <= 0.01
        gap = (
            ledger.input_power_w - ledger.total_loss_w
            - ledger.delivered_power_w
        )
        assert abs(gap) / ledger.input_power_w <= 0.01

    def test_ledger_pde_matches_headline(self, hotspot_run):
        ledger = pde_loss_ledger(hotspot_run)
        assert ledger.pde == pytest.approx(
            hotspot_run.efficiency().pde, rel=1e-9
        )

    def test_all_terms_present_and_nonnegative(self, hotspot_run):
        ledger = pde_loss_ledger(hotspot_run)
        assert set(ledger.terms) == {
            "vrm_conversion_w", "pdn_ir_w", "cr_ivr_shuffle_w",
            "level_shifter_w", "cr_quiescent_w", "controller_w",
        }
        assert all(v >= 0.0 for v in ledger.terms.values())
        assert ledger.terms["controller_w"] == pytest.approx(1.634e-3)


class TestLayerSummary:
    def test_shares_sum_to_one(self):
        rng = np.random.default_rng(5)
        power = rng.uniform(1.0, 8.0, (300, 16))
        rows = layer_imbalance_summary(np.ones((300, 16)), power, STACK)
        assert len(rows) == STACK.num_layers
        assert sum(r["power_share"] for r in rows) == pytest.approx(1.0)

    def test_loaded_layer_shows_excess(self):
        power = np.full((100, 16), 4.0)
        power[:, STACK.sms_in_layer(2)] = 7.0
        rows = layer_imbalance_summary(np.ones((100, 16)), power, STACK)
        assert rows[2]["mean_excess_w"] > 0
        assert rows[0]["mean_excess_w"] == pytest.approx(0.0)

    def test_min_voltage_per_layer(self):
        v = np.full((100, 16), 1.0)
        v[42, STACK.sms_in_layer(1)[0]] = 0.9
        rows = layer_imbalance_summary(v, np.full((100, 16), 4.0), STACK)
        assert rows[1]["min_voltage_v"] == pytest.approx(0.9)
        assert rows[0]["min_voltage_v"] == pytest.approx(1.0)


class TestNoiseReport:
    def test_report_from_real_run(self, hotspot_run):
        report = compute_noise_report(hotspot_run)
        assert report.benchmark == "hotspot"
        assert report.guardband_v == pytest.approx(0.8)
        assert len(report.bands) == 3
        assert report.ledger.closes()

    def test_summary_keys_stable(self, hotspot_run):
        summary = compute_noise_report(hotspot_run).summary()
        for key in (
            "droop_event_count", "droop_cycles", "worst_droop_depth_v",
            "ledger_closure_rel_error", "pde", "max_layer_excess_w",
            "band_control_vrms", "band_mid_vrms", "band_resonance_vrms",
            "residual_imbalance_w_rms",
        ):
            assert key in summary, key

    def test_dict_form_is_json_clean(self, hotspot_run):
        payload = compute_noise_report(hotspot_run).to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["summary"] == payload["summary"]

    def test_droop_summary_reflects_events(self):
        v = np.full((256, 16), 1.0)
        v[100:104, 7] = 0.72
        result = synthetic_result(v, np.full((256, 16), 4.0))
        report = compute_noise_report(result)
        summary = report.summary()
        assert summary["droop_event_count"] == 1
        assert summary["droop_cycles"] == 4
        assert summary["worst_droop_depth_v"] == pytest.approx(0.08)

    def test_too_short_run_rejected(self):
        result = synthetic_result(
            np.ones((4, 16)), np.full((4, 16), 4.0)
        )
        with pytest.raises(ValueError):
            compute_noise_report(result)


class TestRendering:
    def test_render_mentions_every_section(self, hotspot_run):
        text = render_noise_report(compute_noise_report(hotspot_run).to_dict())
        assert "Band decomposition" in text
        assert "PDE loss ledger" in text
        assert "Per-layer current imbalance" in text
        assert "Droop events" in text  # none in a healthy run
        assert "board input" in text

    def test_render_lists_droop_events(self):
        v = np.full((256, 16), 1.0)
        v[10:14, 3] = 0.7
        result = synthetic_result(v, np.full((256, 16), 4.0))
        text = render_noise_report(compute_noise_report(result).to_dict())
        assert "1 below guardband" in text
        assert "SM3" in text
