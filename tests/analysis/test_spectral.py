"""Tests for spectral analysis of power/noise traces."""

import numpy as np
import pytest

from repro.analysis.spectral import (
    _imbalance_series_reference,
    band_power,
    dominant_frequency,
    imbalance_series,
    imbalance_spectrum,
    low_frequency_fraction,
    power_spectrum,
)

FS = 700e6


def sine(freq, cycles=4096, amplitude=1.0, offset=0.0):
    # Snap to the FFT bin grid so amplitudes are leakage-free.
    freq = round(freq * cycles / FS) * FS / cycles
    t = np.arange(cycles) / FS
    return offset + amplitude * np.sin(2 * np.pi * freq * t)


class TestPowerSpectrum:
    def test_pure_tone_recovered(self):
        freqs, amps = power_spectrum(sine(50e6, amplitude=2.0), FS)
        peak = freqs[np.argmax(amps)]
        assert peak == pytest.approx(50e6, rel=0.01)
        assert amps.max() == pytest.approx(2.0, rel=0.05)

    def test_dc_removed(self):
        freqs, amps = power_spectrum(sine(50e6, offset=10.0), FS)
        # No huge DC leakage; the tone still dominates.
        assert freqs[np.argmax(amps)] == pytest.approx(50e6, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_spectrum(np.ones((4, 4)), FS)
        with pytest.raises(ValueError):
            power_spectrum(np.ones(2), FS)
        with pytest.raises(ValueError):
            power_spectrum(np.ones(100), 0.0)


class TestBandPower:
    def test_tone_inside_band(self):
        signal = sine(50e6, amplitude=2.0)
        rms = band_power(signal, FS, 40e6, 60e6)
        assert rms == pytest.approx(2.0 / np.sqrt(2), rel=0.05)

    def test_tone_outside_band(self):
        signal = sine(50e6)
        assert band_power(signal, FS, 100e6, 200e6) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            band_power(sine(1e6), FS, 10e6, 5e6)


class TestDominantFrequency:
    def test_strongest_tone_wins(self):
        signal = sine(30e6, amplitude=1.0) + sine(90e6, amplitude=3.0)
        assert dominant_frequency(signal, FS) == pytest.approx(90e6, rel=0.02)


class TestImbalanceSpectrum:
    def test_components_separable(self):
        # Global tone at 10 MHz on all SMs; residual tone at 2 MHz on one
        # column's bottom SM only.
        cycles = 4096
        t = np.arange(cycles) / FS
        data = np.full((cycles, 16), 4.0)
        data += np.sin(2 * np.pi * 10e6 * t)[:, None]  # global
        residual_wave = 0.5 * np.sin(2 * np.pi * 2e6 * t)
        data[:, 0] += residual_wave
        spectra = imbalance_spectrum(data, FS)
        g_freqs, g_amps = spectra["global"]
        r_freqs, r_amps = spectra["residual"]
        assert g_freqs[np.argmax(g_amps)] == pytest.approx(10e6, rel=0.05)
        assert r_freqs[np.argmax(r_amps)] == pytest.approx(2e6, rel=0.05)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            imbalance_spectrum(np.ones((100, 8)), FS)


class TestImbalanceSeriesVectorization:
    """The vectorized series must match the retained per-cycle
    reference loop *bit for bit* (acceptance criterion; the perf floor
    lives in ``benchmarks/test_perf_spectral.py``)."""

    def test_bit_for_bit_on_random_matrix(self):
        rng = np.random.default_rng(17)
        power = rng.uniform(0.0, 8.0, (2048, 16))
        fast = imbalance_series(power)
        slow = _imbalance_series_reference(power)
        assert set(fast) == set(slow) == {"global", "stack", "residual"}
        for name in fast:
            assert np.array_equal(fast[name], slow[name]), name

    def test_bit_for_bit_on_adversarial_values(self):
        # Mixed magnitudes stress summation-order sensitivity.
        rng = np.random.default_rng(3)
        power = np.abs(rng.lognormal(mean=0.0, sigma=3.0, size=(500, 16)))
        fast = imbalance_series(power)
        slow = _imbalance_series_reference(power)
        for name in fast:
            assert np.array_equal(fast[name], slow[name]), name

    def test_single_cycle_row_vector(self):
        power = np.arange(16.0)
        fast = imbalance_series(power)
        slow = _imbalance_series_reference(power)
        for name in fast:
            assert np.array_equal(fast[name], slow[name])
            assert fast[name].shape == (1,)

    def test_components_reconstruct_first_sm(self):
        rng = np.random.default_rng(9)
        power = rng.uniform(0.0, 8.0, (64, 16))
        series = imbalance_series(power)
        recon = (
            series["global"] + series["stack"] + series["residual"]
        )
        assert np.allclose(recon, power[:, 0])


class TestLowFrequencyFraction:
    def test_low_tone_scores_high(self):
        assert low_frequency_fraction(sine(1e6), FS, 5e6) > 0.95

    def test_high_tone_scores_low(self):
        assert low_frequency_fraction(sine(100e6), FS, 5e6) < 0.05

    def test_flat_signal_zero(self):
        assert low_frequency_fraction(np.full(1000, 3.0), FS, 5e6) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            low_frequency_fraction(sine(1e6), FS, 0.0)

    def test_sustained_imbalance_is_low_frequency(self):
        """The architectural opportunity: *sustained* imbalance (the
        kind the controller must handle — a layer-shutoff-style step)
        concentrates its spectral energy at low frequency, unlike
        per-cycle issue noise."""
        step = np.concatenate([np.full(2048, 4.0), np.full(2048, 1.5)])
        assert low_frequency_fraction(step, FS, 5e6) > 0.9
        # Per-cycle issue noise, by contrast, is broadband.
        rng = np.random.default_rng(3)
        noise = rng.normal(4.0, 1.0, 4096)
        assert low_frequency_fraction(noise, FS, 5e6) < 0.1