"""Tests for ASCII report formatting."""

import pytest

from repro.analysis.report import format_percent, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "pde"], [["vrm", 0.80], ["vs", 0.923]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "vrm" in lines[2]
        assert "0.923" in lines[3]

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="Table III")
        assert out.splitlines()[0] == "Table III"

    def test_column_count_validated(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_floats_rendered_compactly(self):
        out = format_table(["x"], [[0.123456789]])
        assert "0.1235" in out

    def test_wide_cells_stretch_columns(self):
        out = format_table(["x"], [["averyverylongvalue"]])
        header = out.splitlines()[0]
        assert len(header) >= len("averyverylongvalue")


class TestFormatSeries:
    def test_xy_table(self):
        out = format_series(
            {"freq": [1, 2, 3], "z": [0.1, 0.2, 0.3]}, x_label="freq"
        )
        assert "freq" in out
        assert "z" in out

    def test_missing_x_rejected(self):
        with pytest.raises(ValueError, match="x column"):
            format_series({"z": [1]}, x_label="freq")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            format_series({"x": [1, 2], "y": [1]}, x_label="x")

    def test_decimation(self):
        out = format_series(
            {"x": list(range(100)), "y": list(range(100))},
            x_label="x",
            max_points=10,
        )
        # Header + separator + ~10 rows.
        assert len(out.splitlines()) <= 14


class TestFormatPercent:
    def test_rendering(self):
        assert format_percent(0.923) == "92.3%"
        assert format_percent(0.0375) == "3.8%"
