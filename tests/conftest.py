"""Shared fixtures: deterministic runtime-chaos activation.

The chaos harness (:mod:`repro.faults.chaos`) is process-global by
design (hook sites cannot thread a handle through the simulation
stack), so tests must never leak an active plan into their neighbours.
``chaos_plan`` activates a plan for one test body and guarantees
deactivation afterwards, pass or fail.
"""

import pytest

from repro.faults import chaos as chaos_module


@pytest.fixture
def chaos_plan():
    """Activate a :class:`~repro.faults.chaos.ChaosPlan` for this test.

    Usage::

        monkey = chaos_plan(ChaosPlan("name", [ChaosEvent(...)]))

    The plan stays active until the test ends; the fixture deactivates
    it on teardown so no chaos escapes the test.
    """

    def _activate(plan):
        return chaos_module.activate(plan)

    yield _activate
    chaos_module.deactivate()


@pytest.fixture(autouse=True)
def _no_chaos_leak():
    """Backstop: any test that activates chaos directly still cleans up."""
    yield
    chaos_module.deactivate()
