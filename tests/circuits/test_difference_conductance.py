"""Tests for the charge-recycling averaged element (DifferenceConductance).

The element must behave as the averaged model of a flying capacitor
switching between adjacent voltage-stack layers:

* zero current when the stack is balanced;
* equalizing current proportional to the layer-voltage imbalance;
* strictly passive (never generates energy);
* consistent with a direct discrete-time switched-capacitor simulation.
"""

import numpy as np
import pytest

from repro.circuits import Circuit, DifferenceConductance, TransientSolver
from repro.circuits.mna import MNAStructure


def two_layer_stack(g_cr: float, i_top: float, i_bot: float):
    """A 2-layer stack: 2 V supply, loads across each layer, CR element."""
    ckt = Circuit("stack2")
    ckt.add_voltage_source("vdd", "top", "0", 2.0)
    ckt.add_resistor("gl_top", "top", "mid", 1.0)  # top-layer load conductance
    ckt.add_resistor("gl_bot", "mid", "0", 1.0)  # bottom-layer load conductance
    ckt.add_current_source("i_top", "top", "mid", i_top)
    ckt.add_current_source("i_bot", "mid", "0", i_bot)
    if g_cr > 0:
        ckt.add_difference_conductance("cr", ["top", "mid", "0"], [1, -2, 1], g_cr)
    ckt.add_capacitor("c_mid", "mid", "0", 1e-9)
    return ckt


class TestConstruction:
    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError, match="weights"):
            DifferenceConductance("d", ["a", "b"], [1.0], 1.0)

    def test_rejects_repeated_nodes(self):
        with pytest.raises(ValueError, match="repeated"):
            DifferenceConductance("d", ["a", "a", "b"], [1, -2, 1], 1.0)

    def test_rejects_negative_conductance(self):
        with pytest.raises(ValueError, match="non-negative"):
            DifferenceConductance("d", ["a", "b", "c"], [1, -2, 1], -1.0)

    def test_registers_all_nodes_in_circuit(self):
        ckt = Circuit()
        ckt.add_voltage_source("v", "a", "0", 1.0)
        ckt.add_difference_conductance("d", ["a", "b", "c"], [1, -2, 1], 1.0)
        assert set(ckt.nodes) == {"a", "b", "c"}


class TestStamp:
    def test_stamp_is_g_w_wt(self):
        ckt = Circuit()
        ckt.add_voltage_source("v", "a", "0", 1.0)
        ckt.add_resistor("r", "a", "b", 1.0)
        ckt.add_resistor("r2", "b", "c", 1.0)
        ckt.add_resistor("r3", "c", "0", 1.0)
        ckt.add_difference_conductance("d", ["a", "b", "c"], [1, -2, 1], 2.0)
        structure = MNAStructure(ckt)
        with_d = structure.assemble_resistive()
        # Build an identical circuit without the element for comparison.
        ckt2 = Circuit()
        ckt2.add_voltage_source("v", "a", "0", 1.0)
        ckt2.add_resistor("r", "a", "b", 1.0)
        ckt2.add_resistor("r2", "b", "c", 1.0)
        ckt2.add_resistor("r3", "c", "0", 1.0)
        without_d = MNAStructure(ckt2).assemble_resistive()
        delta = with_d - without_d
        w = np.array([1.0, -2.0, 1.0])
        expected = 2.0 * np.outer(w, w)
        ia, ib, ic = (ckt.node_index(n) for n in ("a", "b", "c"))
        got = delta[np.ix_([ia, ib, ic], [ia, ib, ic])]
        assert np.allclose(got, expected)

    def test_stamp_symmetric_psd(self):
        w = np.array([1.0, -2.0, 1.0])
        stamp = 3.0 * np.outer(w, w)
        eigenvalues = np.linalg.eigvalsh(stamp)
        assert np.all(eigenvalues >= -1e-12)


class TestEqualization:
    def test_no_current_when_balanced(self):
        # Equal loads on both layers: the CR element must carry nothing,
        # so mid-node voltage equals the no-CR case exactly.
        base = two_layer_stack(g_cr=0.0, i_top=0.5, i_bot=0.5)
        with_cr = two_layer_stack(g_cr=10.0, i_top=0.5, i_bot=0.5)
        v_base = TransientSolver(base, 1e-10).initialize_dc()
        v_cr = TransientSolver(with_cr, 1e-10).initialize_dc()
        mid_base = v_base[base.node_index("mid")]
        mid_cr = v_cr[with_cr.node_index("mid")]
        assert mid_base == pytest.approx(1.0, abs=1e-9)
        assert mid_cr == pytest.approx(mid_base, abs=1e-9)

    def test_restores_balance_under_imbalance(self):
        # Load only the bottom layer: its rail (mid) droops without CR.
        # A strong CR element pulls it back toward half the supply.
        without = two_layer_stack(g_cr=0.0, i_top=0.0, i_bot=1.0)
        with_cr = two_layer_stack(g_cr=50.0, i_top=0.0, i_bot=1.0)
        v_without = TransientSolver(without, 1e-10).initialize_dc()
        v_with = TransientSolver(with_cr, 1e-10).initialize_dc()
        mid_without = v_without[without.node_index("mid")]
        mid_with = v_with[with_cr.node_index("mid")]
        assert mid_without < 0.7  # badly imbalanced: bottom layer droops
        assert abs(mid_with - 1.0) < 0.05  # CR-IVR restores the midpoint

    def test_stronger_cr_regulates_tighter(self):
        deviations = []
        for g in [1.0, 10.0, 100.0]:
            ckt = two_layer_stack(g_cr=g, i_top=0.0, i_bot=1.0)
            v = TransientSolver(ckt, 1e-10).initialize_dc()
            deviations.append(abs(v[ckt.node_index("mid")] - 1.0))
        assert deviations[0] > deviations[1] > deviations[2]


class TestSwitchLevelConsistency:
    def test_averaged_model_matches_discrete_charge_sharing(self):
        """Direct two-phase switched-capacitor simulation vs averaged G.

        A flying cap C_f at frequency f_sw carrying charge between a
        'source' layer at fixed v_a and a 'sink' layer capacitor C_o
        drives the sink toward v_a with time constant C_o / (f_sw * C_f)
        — which is exactly what a conductance g = f_sw * C_f predicts.
        """
        f_sw, c_fly, c_out = 100e6, 1e-9, 100e-9
        v_src, v0 = 1.0, 0.5
        # Discrete-time: each switch cycle moves c_fly*(v_src - v_out).
        v_out = v0
        cycles = 200
        voltages = [v_out]
        for _ in range(cycles):
            charge = c_fly * (v_src - v_out)
            v_out += charge / c_out
            voltages.append(v_out)
        times = np.arange(cycles + 1) / f_sw
        # Averaged model: RC with R = 1/(f_sw*c_fly).
        tau = c_out / (f_sw * c_fly)
        analytic = v_src + (v0 - v_src) * np.exp(-times / tau)
        assert np.max(np.abs(np.array(voltages) - analytic)) < 0.01
