"""Unit tests for circuit element definitions."""

import pytest

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
    evaluate_waveform,
)


class TestWaveform:
    def test_constant(self):
        assert evaluate_waveform(3.5, t=0.0) == 3.5
        assert evaluate_waveform(3.5, t=1e-6) == 3.5

    def test_callable(self):
        assert evaluate_waveform(lambda t: 2.0 * t, t=0.5) == 1.0

    def test_callable_result_coerced_to_float(self):
        result = evaluate_waveform(lambda t: 3, t=0.0)
        assert isinstance(result, float)


class TestResistor:
    def test_conductance(self):
        r = Resistor("r1", "a", "b", 4.0)
        assert r.conductance == 0.25

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_resistance(self, bad):
        with pytest.raises(ValueError, match="positive resistance"):
            Resistor("r1", "a", "b", bad)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="itself"):
            Resistor("r1", "a", "a", 1.0)


class TestCapacitor:
    def test_initial_voltage_default_zero(self):
        c = Capacitor("c1", "a", "0", 1e-9)
        assert c.v0 == 0.0

    @pytest.mark.parametrize("bad", [0.0, -1e-9])
    def test_rejects_nonpositive_capacitance(self, bad):
        with pytest.raises(ValueError, match="positive capacitance"):
            Capacitor("c1", "a", "0", bad)


class TestInductor:
    def test_initial_current_default_zero(self):
        l = Inductor("l1", "a", "b", 1e-9)
        assert l.i0 == 0.0

    @pytest.mark.parametrize("bad", [0.0, -1e-9])
    def test_rejects_nonpositive_inductance(self, bad):
        with pytest.raises(ValueError, match="positive inductance"):
            Inductor("l1", "a", "b", bad)


class TestSources:
    def test_voltage_source_constant(self):
        v = VoltageSource("v1", "a", "0", 4.1)
        assert v.voltage_at(0.0) == 4.1

    def test_voltage_source_time_varying(self):
        v = VoltageSource("v1", "a", "0", lambda t: 1.0 + t)
        assert v.voltage_at(0.5) == 1.5

    def test_current_source_override_takes_precedence(self):
        i = CurrentSource("i1", "a", "0", lambda t: 99.0)
        assert i.current_at(0.0) == 99.0
        i.override = 2.5
        assert i.current_at(0.0) == 2.5
        i.override = None
        assert i.current_at(0.0) == 99.0
