"""Property-based tests of the circuit engine (hypothesis).

Invariants checked on randomly generated passive ladder networks:

* the transient solution from a DC initialization is stationary;
* after a load step, the waveform settles to the new DC solution;
* AC impedance magnitude of a passive network is finite and positive;
* superposition holds (the engine is linear).
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import ACAnalysis, Circuit, TransientSolver

resistances = st.floats(min_value=0.01, max_value=10.0)
capacitances = st.floats(min_value=1e-12, max_value=1e-8)
load_currents = st.floats(min_value=0.0, max_value=5.0)


def build_ladder(rungs, v_supply=1.0):
    """Build an R-C ladder: supply -> R -> node (C to ground) -> R -> ..."""
    ckt = Circuit("ladder")
    ckt.add_voltage_source("vdd", "n0", "0", v_supply)
    prev = "n0"
    for k, (r, c) in enumerate(rungs, start=1):
        node = f"n{k}"
        ckt.add_resistor(f"r{k}", prev, node, r)
        ckt.add_capacitor(f"c{k}", node, "0", c)
        prev = node
    return ckt, prev


@given(
    rungs=st.lists(st.tuples(resistances, capacitances), min_size=1, max_size=5),
)
@settings(max_examples=25, deadline=None)
def test_dc_initialization_is_stationary(rungs):
    ckt, last = build_ladder(rungs)
    solver = TransientSolver(ckt, dt=1e-10)
    solver.initialize_dc()
    for _ in range(20):
        solver.step()
    # No load: every node should still sit at the supply voltage.
    assert abs(solver.node_voltage(last) - 1.0) < 1e-8


@given(
    rungs=st.lists(st.tuples(resistances, capacitances), min_size=1, max_size=4),
    load=load_currents,
)
@settings(max_examples=25, deadline=None)
def test_settles_to_dc_after_load_step(rungs, load):
    ckt, last = build_ladder(rungs)
    sink = ckt.add_current_source("load", last, "0", 0.0)
    total_r = sum(r for r, _ in rungs)
    solver = TransientSolver(ckt, dt=1e-10)
    solver.initialize_dc()
    sink.override = load
    # Run long enough to settle: several times the slowest time constant.
    tau = sum(r for r, _ in rungs) * max(c for _, c in rungs) * len(rungs)
    steps = min(200_000, max(2000, int(10 * tau / 1e-10)))
    for _ in range(steps):
        solver.step()
    expected = 1.0 - load * total_r
    assert abs(solver.node_voltage(last) - expected) < 5e-3 * max(1.0, abs(expected))


@given(
    rungs=st.lists(st.tuples(resistances, capacitances), min_size=1, max_size=5),
    freq=st.floats(min_value=1e5, max_value=1e9),
)
@settings(max_examples=25, deadline=None)
def test_passive_impedance_finite_positive(rungs, freq):
    ckt, last = build_ladder(rungs)
    ac = ACAnalysis(ckt)
    z = ac.transfer_impedance(freq, {last: 1.0}, last)
    assert math.isfinite(abs(z))
    assert abs(z) >= 0.0
    # Passive network: magnitude bounded by total series resistance at DC
    # plus margin (resonance cannot occur without inductors).
    assert abs(z) <= sum(r for r, _ in rungs) * 1.01


@given(
    rungs=st.lists(st.tuples(resistances, capacitances), min_size=2, max_size=4),
    i1=st.floats(min_value=0.1, max_value=2.0),
    i2=st.floats(min_value=0.1, max_value=2.0),
)
@settings(max_examples=25, deadline=None)
def test_ac_superposition(rungs, i1, i2):
    ckt, last = build_ladder(rungs)
    ac = ACAnalysis(ckt)
    first = "n1"
    f = 1e7
    va = ac.solve(f, {first: i1})[last]
    vb = ac.solve(f, {last: i2})[last]
    vab = ac.solve(f, {first: i1, last: i2})[last]
    assert abs(vab - (va + vb)) < 1e-9 * max(1.0, abs(vab))
