"""Numerical guard-rail tests (SolverGuard / BatchSolverGuard).

The guard's contract has three parts: the clean path is bit-identical
to an unguarded solver (recovery machinery must cost nothing when
nothing goes wrong), each escalation stage recovers the class of
failure it exists for (stale/poisoned LU -> refactorize; transient
solve failures -> bounded dt-halving), and an unrecoverable cycle
raises :class:`NumericalDivergence` carrying real forensics with the
solver restored to the cycle boundary.
"""

import json

import numpy as np
import pytest

from repro.circuits import (
    BatchSolverGuard,
    BatchTransientSolver,
    Circuit,
    NumericalDivergence,
    SolverGuard,
    TransientSolver,
)

DT = 1e-10
SUBSTEPS = 4


def rail_circuit(load_a=1.0):
    """Small stacked rail: source, series R, decap, current-source load."""
    ckt = Circuit("rail")
    ckt.add_voltage_source("vdd", "in", "0", 1.0)
    ckt.add_resistor("r", "in", "out", 0.1)
    ckt.add_capacitor("c", "out", "0", 1e-9, v0=1.0)
    ckt.add_current_source("load", "out", "0", load_a)
    return ckt


def make_solver(load_a=1.0):
    solver = TransientSolver(rail_circuit(load_a), dt=DT)
    solver.initialize_dc()
    return solver


class TestCleanPath:
    def test_guarded_cycles_bit_identical_to_unguarded(self):
        guarded = make_solver()
        plain = make_solver()
        guard = SolverGuard(guarded)
        for cycle in range(20):
            node_g = guard.step_cycle(SUBSTEPS, cycle=cycle)
            for _ in range(SUBSTEPS):
                node_p = plain.step()
            assert np.array_equal(node_g, node_p), f"cycle {cycle}"
            assert np.array_equal(guarded.solution, plain.solution)
        assert guarded.time == plain.time
        assert guard.counters() == {
            "refactor_recoveries": 0,
            "dt_halving_recoveries": 0,
            "divergences": 0,
        }
        assert guard.recoveries == 0

    def test_constructor_validation(self):
        solver = make_solver()
        with pytest.raises(ValueError):
            SolverGuard(solver, spike_limit_v=0.0)
        with pytest.raises(ValueError):
            SolverGuard(solver, max_dt_halvings=-1)


class TestRefactorRecovery:
    def test_poisoned_lu_is_refactorized_and_cycle_redone(self):
        solver = make_solver()
        reference = make_solver()
        guard = SolverGuard(solver)
        for cycle in range(3):
            guard.step_cycle(SUBSTEPS, cycle=cycle)
            for _ in range(SUBSTEPS):
                reference.step()
        # Poison the cached factorization: the next solve yields NaN
        # without raising, the health scan catches it, and stage 1
        # (refactorize + redo from the cycle-start snapshot) recovers.
        lu, piv = solver._lu
        solver._lu = (np.full_like(lu, np.nan), piv)
        node_v = guard.step_cycle(SUBSTEPS, cycle=3)
        for _ in range(SUBSTEPS):
            ref_v = reference.step()
        assert guard.refactor_recoveries == 1
        assert guard.divergences == 0
        # Recovery lands on exactly the state a clean cycle produces.
        assert np.array_equal(node_v, ref_v)
        assert solver.time == reference.time

    def test_exception_during_solve_recovers_via_refactor(self, monkeypatch):
        solver = make_solver()
        guard = SolverGuard(solver)
        real_step = solver.step
        calls = {"n": 0}

        # Only the first attempt's solve fails (each failed attempt
        # aborts on its first raising step); the stage-1 redo succeeds.
        def flaky_step():
            calls["n"] += 1
            if calls["n"] <= 1:
                raise FloatingPointError("injected transient failure")
            return real_step()

        monkeypatch.setattr(solver, "step", flaky_step)
        guard.step_cycle(SUBSTEPS, cycle=0)
        assert guard.refactor_recoveries == 1
        assert guard.divergences == 0


class TestDtHalvingRecovery:
    def test_persistent_failure_recovers_at_halved_dt(self, monkeypatch):
        solver = make_solver()
        guard = SolverGuard(solver, max_dt_halvings=3)
        dt0 = solver.dt
        t0 = solver.time
        real_step = solver.step
        calls = {"n": 0}
        # Fail the first attempt and the refactor redo (one raising
        # call aborts each), so the guard must escalate to stage 2.
        def flaky_step():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise FloatingPointError("injected")
            return real_step()

        monkeypatch.setattr(solver, "step", flaky_step)
        guard.step_cycle(SUBSTEPS, cycle=0)
        assert guard.dt_halving_recoveries == 1
        assert guard.refactor_recoveries == 0
        # dt is restored and the end time sits exactly on the nominal
        # grid (the clean path's accumulation sequence).
        assert solver.dt == dt0
        t_expect = t0
        for _ in range(SUBSTEPS):
            t_expect = t_expect + dt0
        assert solver.time == t_expect


class TestDivergence:
    def test_poisoned_state_exhausts_the_ladder(self):
        solver = make_solver()
        guard = SolverGuard(solver, lane=7)
        t_before = solver.time
        # NaN in the reactive state is in the snapshot itself: no
        # recovery stage can undo it, so the ladder must exhaust.
        solver._react_v[:] = np.nan
        with pytest.raises(NumericalDivergence) as excinfo:
            guard.step_cycle(SUBSTEPS, cycle=42)
        err = excinfo.value
        assert err.stage == "exhausted"
        assert err.cycle == 42
        assert err.lane == 7
        assert err.worst_node is not None
        assert guard.divergences == 1
        # The lane is left parked at the cycle boundary.
        assert solver.time == t_before

    def test_spike_limit_catches_absurd_but_finite_voltages(self):
        solver = make_solver()
        # The rail sits near 1 V; a 1 uV ceiling flags every solution.
        guard = SolverGuard(solver, spike_limit_v=1e-6, max_dt_halvings=1)
        with pytest.raises(NumericalDivergence) as excinfo:
            guard.step_cycle(SUBSTEPS, cycle=0)
        err = excinfo.value
        assert np.isfinite(err.worst_value)
        assert abs(err.worst_value) >= 1e-6

    def test_forensics_record_is_json_ready(self):
        solver = make_solver()
        guard = SolverGuard(solver)
        solver._react_v[:] = np.nan
        with pytest.raises(NumericalDivergence) as excinfo:
            guard.step_cycle(SUBSTEPS, cycle=5)
        record = excinfo.value.forensics()
        assert record["stage"] == "exhausted"
        assert record["cycle"] == 5
        assert record["recoveries"] == {
            "refactor_recoveries": 0,
            "dt_halving_recoveries": 0,
            "divergences": 1,
        }
        json.dumps(record)  # must not need any custom encoder


class TestBatchGuard:
    def _batch(self, loads):
        solvers = [make_solver(a) for a in loads]
        return BatchTransientSolver(solvers), solvers

    def test_clean_batch_cycle_matches_serial(self):
        batch, solvers = self._batch([0.5, 1.0, 1.5])
        guard = BatchSolverGuard(batch)
        serial = [make_solver(a) for a in (0.5, 1.0, 1.5)]
        for cycle in range(10):
            node_bt, failures = guard.step_cycle(SUBSTEPS, cycle=cycle)
            assert failures == {}
            for row, ref in enumerate(serial):
                for _ in range(SUBSTEPS):
                    ref_v = ref.step()
                assert np.array_equal(node_bt[row], ref_v)

    def test_one_bad_lane_fails_alone(self):
        batch, solvers = self._batch([0.5, 1.0, 1.5])
        guard = BatchSolverGuard(batch)
        guard.step_cycle(SUBSTEPS, cycle=0)
        serial = [make_solver(a) for a in (0.5, 1.0, 1.5)]
        for ref in serial:
            for _ in range(SUBSTEPS):
                ref.step()
        solvers[1]._react_v[:] = np.nan
        node_bt, failures = guard.step_cycle(SUBSTEPS, cycle=1)
        assert list(failures) == [1]
        assert failures[1].lane == 1
        assert failures[1].cycle == 1
        # Healthy lanes are untouched by the bad one's rollback.
        for row in (0, 2):
            for _ in range(SUBSTEPS):
                ref_v = serial[row].step()
            assert np.array_equal(node_bt[row], ref_v)

    def test_counters_aggregate_over_lanes(self):
        batch, solvers = self._batch([1.0, 1.0])
        guard = BatchSolverGuard(batch)
        solvers[0]._react_v[:] = np.nan
        _, failures = guard.step_cycle(SUBSTEPS, cycle=0)
        assert list(failures) == [0]
        assert guard.counters()["divergences"] == 1

    def test_guard_pairing_is_validated(self):
        batch, solvers = self._batch([1.0, 1.0])
        with pytest.raises(ValueError):
            BatchSolverGuard(batch, guards=[SolverGuard(solvers[0])])
        with pytest.raises(ValueError):
            BatchSolverGuard(
                batch,
                guards=[SolverGuard(solvers[1]), SolverGuard(solvers[0])],
            )
