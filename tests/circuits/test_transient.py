"""Transient solver tests against closed-form circuit theory results."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, TransientSolver


def rc_circuit(r=100.0, c=1e-9, v=1.0):
    ckt = Circuit("rc")
    ckt.add_voltage_source("vin", "in", "0", v)
    ckt.add_resistor("r", "in", "out", r)
    ckt.add_capacitor("c", "out", "0", c, v0=0.0)
    return ckt


class TestRCStep:
    def test_charging_curve_matches_analytic(self):
        r, c, v = 100.0, 1e-9, 1.0
        tau = r * c
        ckt = rc_circuit(r, c, v)
        solver = TransientSolver(ckt, dt=tau / 100)
        # Start from the capacitor's stated initial condition, not DC.
        result = solver.run(5 * tau, record=["out"], initialize=False)
        analytic = v * (1 - np.exp(-result.times / tau))
        # Trapezoidal startup carries a half-step error (~h/2tau) at t=0+;
        # beyond that the curve tracks the analytic solution tightly.
        assert np.max(np.abs(result.voltage("out") - analytic)) < 6e-3
        late = result.times > tau
        assert np.max(np.abs(result.voltage("out")[late] - analytic[late])) < 2.5e-3

    def test_dc_initialization_starts_settled(self):
        ckt = rc_circuit()
        solver = TransientSolver(ckt, dt=1e-9)
        result = solver.run(1e-6, record=["out"])
        # Initialized at DC: output stays at the source voltage throughout.
        assert np.allclose(result.voltage("out"), 1.0, atol=1e-9)


class TestRLCResonance:
    def test_underdamped_ringing_frequency(self):
        # Series RLC driven by a current step into the tank: ring at
        # f = 1/(2*pi*sqrt(LC)) (approximately, for low damping).
        l, c, r = 10e-9, 100e-9, 0.05
        f0 = 1 / (2 * math.pi * math.sqrt(l * c))
        ckt = Circuit("rlc")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("r", "in", "mid", r)
        ckt.add_inductor("l", "mid", "out", l)
        ckt.add_capacitor("c", "out", "0", c, v0=0.0)
        # Load step at t=0 excites the tank (start from unsettled IC).
        solver = TransientSolver(ckt, dt=1.0 / (f0 * 200))
        result = solver.run(6 / f0, record=["out"], initialize=False)
        waveform = result.voltage("out") - 1.0
        # Count zero crossings to estimate the ringing frequency.
        signs = np.sign(waveform[np.abs(waveform) > 1e-6])
        crossings = np.sum(signs[1:] != signs[:-1])
        measured_f0 = crossings / 2 / (result.times[-1] - result.times[0])
        assert measured_f0 == pytest.approx(f0, rel=0.1)

    def test_energy_decays_with_resistance(self):
        l, c, r = 10e-9, 100e-9, 0.5
        f0 = 1 / (2 * math.pi * math.sqrt(l * c))
        ckt = Circuit("rlc")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("r", "in", "mid", r)
        ckt.add_inductor("l", "mid", "out", l)
        ckt.add_capacitor("c", "out", "0", c, v0=0.0)
        solver = TransientSolver(ckt, dt=1.0 / (f0 * 100))
        result = solver.run(20 / f0, record=["out"], initialize=False)
        waveform = result.voltage("out")
        # Final value settles to the source voltage.
        assert waveform[-1] == pytest.approx(1.0, abs=1e-3)


class TestCurrentSourceLoad:
    def test_ir_drop_at_dc(self):
        # 1 A load through 0.1 ohm: the rail sags by exactly 100 mV.
        ckt = Circuit("irdrop")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("rpdn", "in", "chip", 0.1)
        ckt.add_capacitor("cdecap", "chip", "0", 1e-9)
        ckt.add_current_source("load", "chip", "0", 1.0)
        solver = TransientSolver(ckt, dt=1e-10)
        result = solver.run(50e-9, record=["chip"])
        assert result.voltage("chip")[-1] == pytest.approx(0.9, abs=1e-6)

    def test_override_changes_load(self):
        ckt = Circuit("override")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("rpdn", "in", "chip", 0.1)
        ckt.add_capacitor("cdecap", "chip", "0", 1e-12)
        load = ckt.add_current_source("load", "chip", "0", 0.0)
        solver = TransientSolver(ckt, dt=1e-10)
        solver.initialize_dc()
        load.override = 2.0
        for _ in range(500):
            solver.step()
        assert solver.node_voltage("chip") == pytest.approx(0.8, abs=1e-4)

    def test_time_varying_source(self):
        ckt = Circuit("tv")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("rpdn", "in", "chip", 0.1)
        ckt.add_capacitor("cdecap", "chip", "0", 1e-12)
        ckt.add_current_source("load", "chip", "0", lambda t: 1.0 if t > 5e-9 else 0.0)
        solver = TransientSolver(ckt, dt=1e-10)
        result = solver.run(20e-9, record=["chip"])
        v = result.voltage("chip")
        assert v[0] == pytest.approx(1.0, abs=1e-6)
        # Trapezoidal ringing (tau << dt) leaves a small residual.
        assert v[-1] == pytest.approx(0.9, abs=1e-3)


class TestVectorizedEquivalence:
    """The scatter/gather fast path must track the naive loop bit-for-bit.

    The vectorized path emits its RHS accumulation triples in the naive
    path's execution order, so per-node floating-point summation order
    is identical and the waveforms match exactly — not just to rounding.
    """

    def _two_solvers(self, build):
        fast = TransientSolver(build(), dt=1e-10, vectorized=True)
        slow = TransientSolver(build(), dt=1e-10, vectorized=False)
        return fast, slow

    def test_rc_bitwise_identical(self):
        fast, slow = self._two_solvers(rc_circuit)
        a = fast.run(50e-9, record=["out"], initialize=False)
        b = slow.run(50e-9, record=["out"], initialize=False)
        assert np.array_equal(a.voltage("out"), b.voltage("out"))

    def test_rlc_with_load_bitwise_identical(self):
        def build():
            ckt = Circuit("rlc_load")
            ckt.add_voltage_source("vin", "in", "0", 1.0)
            ckt.add_resistor("r", "in", "mid", 0.05)
            ckt.add_inductor("l", "mid", "chip", 10e-9)
            ckt.add_capacitor("c", "chip", "0", 100e-9, v0=0.0)
            ckt.add_current_source(
                "load", "chip", "0", lambda t: 0.5 if t > 2e-9 else 0.0
            )
            return ckt

        fast, slow = self._two_solvers(build)
        a = fast.run(30e-9, record=["chip", "mid"], initialize=False)
        b = slow.run(30e-9, record=["chip", "mid"], initialize=False)
        assert np.array_equal(a.voltage("chip"), b.voltage("chip"))
        assert np.array_equal(a.voltage("mid"), b.voltage("mid"))

    def test_stacked_pdn_bitwise_identical(self):
        """The production netlist: a full 4x4 stacked PDN."""
        from repro.pdn.builder import build_stacked_pdn

        results = []
        for vectorized in (True, False):
            pdn = build_stacked_pdn()
            solver = TransientSolver(
                pdn.circuit, dt=1e-10, vectorized=vectorized
            )
            solver.initialize_dc()
            rng = np.random.default_rng(11)
            trace = []
            for k in range(200):
                pdn.set_sm_currents(1.0 + 0.5 * rng.random(16))
                solver.step()
                trace.append(
                    [pdn.sm_voltage(solver, sm) for sm in range(4)]
                )
            results.append(np.asarray(trace))
        assert np.array_equal(results[0], results[1])

    def test_dc_operating_points_match(self):
        fast, slow = self._two_solvers(rc_circuit)
        assert np.array_equal(fast.initialize_dc(), slow.initialize_dc())

    def test_inductor_state_matches(self):
        def build():
            ckt = Circuit("l")
            ckt.add_voltage_source("vin", "in", "0", 1.0)
            ckt.add_resistor("r", "in", "mid", 1.0)
            ckt.add_inductor("l", "mid", "0", 1e-9)
            return ckt

        fast, slow = self._two_solvers(build)
        fast.initialize_dc()
        slow.initialize_dc()
        for _ in range(100):
            fast.step()
            slow.step()
        assert fast.inductor_current("l") == slow.inductor_current("l")


class TestBatchCurrentBinding:
    def test_batch_buffer_drives_source(self):
        ckt = Circuit("batch")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("rpdn", "in", "chip", 0.1)
        ckt.add_capacitor("cdecap", "chip", "0", 1e-12)
        load = ckt.add_current_source("load", "chip", "0", 0.0)
        buffer = np.zeros(1)
        load.bind_batch(buffer, 0)
        solver = TransientSolver(ckt, dt=1e-10)
        solver.initialize_dc()
        buffer[0] = 2.0
        for _ in range(500):
            solver.step()
        assert solver.node_voltage("chip") == pytest.approx(0.8, abs=1e-4)

    def test_batch_supersedes_override_and_value(self):
        ckt = Circuit("precedence")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("r", "in", "chip", 0.1)
        load = ckt.add_current_source("load", "chip", "0", 5.0)
        load.override = 3.0
        buffer = np.array([1.0])
        load.bind_batch(buffer, 0)
        assert load.current_at(0.0) == 1.0

    def test_bind_batch_rejects_bad_index(self):
        ckt = Circuit("badidx")
        load = ckt.add_current_source("load", "a", "0", 0.0)
        with pytest.raises(IndexError):
            load.bind_batch(np.zeros(2), 2)


class TestSolverInterface:
    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError, match="dt"):
            TransientSolver(rc_circuit(), dt=0.0)

    def test_rejects_nonpositive_duration(self):
        solver = TransientSolver(rc_circuit(), dt=1e-9)
        with pytest.raises(ValueError, match="duration"):
            solver.run(0.0)

    def test_inductor_current_query(self):
        ckt = Circuit("l")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("r", "in", "mid", 1.0)
        ckt.add_inductor("l", "mid", "0", 1e-9)
        solver = TransientSolver(ckt, dt=1e-11)
        solver.initialize_dc()
        # DC: inductor is a short, so 1 V across 1 ohm = 1 A through L.
        assert solver.inductor_current("l") == pytest.approx(1.0, rel=1e-3)
        with pytest.raises(KeyError):
            solver.inductor_current("nope")

    def test_ground_voltage_is_zero(self):
        solver = TransientSolver(rc_circuit(), dt=1e-9)
        solver.initialize_dc()
        assert solver.node_voltage("0") == 0.0

    def test_differential_recording(self):
        ckt = rc_circuit()
        solver = TransientSolver(ckt, dt=1e-9)
        result = solver.run(100e-9, record=["in", "out"])
        diff = result.differential("in", "out")
        assert np.allclose(diff, result.voltage("in") - result.voltage("out"))
