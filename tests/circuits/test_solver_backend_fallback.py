"""Loud-fallback contract of the C solver build (repro.circuits._solverc).

Mirror of ``tests/gpu/test_backend_fallback.py`` for the batched
transient-solver kernel: a failed ``_solverc.c`` build must never
silently degrade a campaign to the NumPy batch step — the first
failure warns (once), every consumer landing on the slow path is
counted, and a batched co-simulation run with telemetry carries the
count as the ``solver.backend_fallback`` counter.  The
``REPRO_SOLVER_CBUILD`` env var forces the failure deterministically
(``fail``) or silences the warning (``quiet``).
"""

import warnings

import pytest

from repro.circuits import _solverc


@pytest.fixture
def forced_failure(monkeypatch):
    """Force the build to fail, with clean counter state either side."""
    _solverc.reset_fallback_state()
    monkeypatch.setenv(_solverc.CBUILD_ENV, "fail")
    yield
    _solverc.reset_fallback_state()


class TestForcedFailure:
    def test_forced_build_failure_returns_none(self, forced_failure):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert _solverc.load_solver_lib() is None
        assert _solverc.build_fallback_count() == 1

    def test_first_failure_warns_once(self, forced_failure):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _solverc.load_solver_lib()
            _solverc.load_solver_lib()
        fallback = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "falling back" in str(w.message)
        ]
        assert len(fallback) == 1
        # ... but every consumer landing on the slow path is counted.
        assert _solverc.build_fallback_count() == 2

    def test_quiet_mode_counts_without_warning(self, monkeypatch):
        _solverc.reset_fallback_state()
        monkeypatch.setenv(_solverc.CBUILD_ENV, "quiet")
        # 'quiet' does not force a failure; force one via the cached
        # failed-load state instead.
        monkeypatch.setitem(
            _solverc._LIB_CACHE, "lib", _solverc._LOAD_FAILED
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert _solverc.load_solver_lib() is None
        assert caught == []
        assert _solverc.build_fallback_count() == 1
        _solverc.reset_fallback_state()

    def test_reset_rearms_the_warning(self, forced_failure):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            _solverc.load_solver_lib()
        _solverc.reset_fallback_state()
        assert _solverc.build_fallback_count() == 0
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _solverc.load_solver_lib()
        assert any("falling back" in str(w.message) for w in caught)


class TestBackendSelection:
    def test_forced_failure_lands_on_numpy_backend(self, forced_failure):
        from repro.sim.cosim import CosimConfig, CosimLane, run_cosim_batch

        cfg = CosimConfig(cycles=40, warmup_cycles=10, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            from repro.sim import cosim

            results = run_cosim_batch(
                [CosimLane(benchmark="hotspot", config=cfg)]
            )
            info = cosim.last_batch_solver_info()
        assert len(results) == 1 and not results[0].diverged
        assert info["backend"] == "numpy"
        assert _solverc.build_fallback_count() >= 1

    def test_env_numpy_override_is_not_a_fallback(self, monkeypatch):
        """Explicitly requesting numpy is a choice, not a degradation."""
        _solverc.reset_fallback_state()
        monkeypatch.setenv(_solverc.BACKEND_ENV, "numpy")
        from repro.sim.cosim import CosimConfig, CosimLane, run_cosim_batch

        cfg = CosimConfig(cycles=40, warmup_cycles=10, seed=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_cosim_batch([CosimLane(benchmark="hotspot", config=cfg)])
        assert not any("falling back" in str(w.message) for w in caught)
        assert _solverc.build_fallback_count() == 0


class TestCosimTelemetry:
    def test_fallback_count_lands_in_batch_telemetry(self, forced_failure):
        from repro.sim.cosim import CosimConfig, CosimLane, run_cosim_batch
        from repro.telemetry import Telemetry

        tele = Telemetry(run_id="solver-fallback-test")
        cfg = CosimConfig(cycles=40, warmup_cycles=10, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            results = run_cosim_batch(
                [CosimLane(benchmark="hotspot", config=cfg)],
                telemetry=tele,
            )
        assert not results[0].diverged
        assert tele.counters.get("solver.backend_fallback", 0) >= 1
