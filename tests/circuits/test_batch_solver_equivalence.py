"""Cross-backend bit-identity of the compiled batch solver.

``BatchTransientSolver.step_n`` has two backends: the fused C substep
kernel (``_solverc.c``, default) and the pure-NumPy per-step path.  The
NumPy path is the bit-identity oracle, and both must reproduce B
independent serial :class:`TransientSolver` runs byte for byte —
through randomized lane counts / seeds / current schedules, a mid-run
per-lane ``refactor()`` (shard split), guard recovery and lane
quarantine, and including ``SolverStats`` step/factorization parity.

Also pins the per-entry in-place probe of the NumPy path: a ``getrs``
wrapper that copies instead of solving in place must trigger that
lane's copy-back without corrupting any other lane's solution row,
even when copying and in-place shards coexist.
"""

import os
import warnings
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    BatchSolverGuard,
    BatchTransientSolver,
    _solverc,
)
from repro.circuits.elements import Resistor
from repro.circuits.transient import TransientSolver
from repro.config import StackConfig
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.parameters import DEFAULT_PDN

DT = 1.0 / 700e6
NUM_SMS = StackConfig().num_sms
NOMINAL_A = 40.0 / NUM_SMS
SUBSTEPS = 2


def _c_available() -> bool:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return (
            _solverc.load_solver_lib() is not None
            and _solverc.dgetrs_pointer() is not None
        )


needs_c = pytest.mark.skipif(
    not _c_available(), reason="compiled solver kernel unavailable"
)


@contextmanager
def forced_backend(name):
    old = os.environ.get(_solverc.BACKEND_ENV)
    os.environ[_solverc.BACKEND_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(_solverc.BACKEND_ENV, None)
        else:
            os.environ[_solverc.BACKEND_ENV] = old


def _make_lane(buffer=None):
    pdn = build_stacked_pdn(stack=StackConfig(), params=DEFAULT_PDN)
    pdn.bind_current_buffer(buffer)
    solver = TransientSolver(pdn.circuit, dt=DT)
    return pdn, solver


def _schedule(rng, cycles):
    base = np.full(NUM_SMS, NOMINAL_A)
    return base * (0.2 + rng.random((cycles, NUM_SMS)) * 1.6)


def _run_batch(backend_name, schedules, cycles, mutate=None):
    """Drive a batch under one backend; returns recorded waveforms."""
    n_lanes = len(schedules)
    currents_bt = np.zeros((n_lanes, NUM_SMS))
    lanes = [_make_lane(currents_bt[i]) for i in range(n_lanes)]
    batch = BatchTransientSolver(
        [s for _, s in lanes], shared_current_base=currents_bt
    )
    volts, supply = [], []
    with forced_backend(backend_name):
        for k in range(cycles):
            if mutate is not None:
                mutate(k, lanes)
            for i in range(n_lanes):
                lanes[i][0].set_sm_currents(schedules[i][k])
            volts.append(batch.step_n(SUBSTEPS).copy())
            supply.append(batch.vsource_currents("vdd").copy())
    return np.array(volts), np.array(supply), batch


def _run_serial(schedules, cycles, mutate=None):
    """The serial oracle: each lane stepped alone, substep by substep."""
    n_lanes = len(schedules)
    lanes = [_make_lane() for _ in range(n_lanes)]
    volts, supply = [], []
    for k in range(cycles):
        if mutate is not None:
            mutate(k, lanes)
        for i in range(n_lanes):
            lanes[i][0].set_sm_currents(schedules[i][k])
        node_v = None
        for _ in range(SUBSTEPS):
            node_v = np.array([s.step() for _, s in lanes])
        volts.append(node_v)
        supply.append(
            np.array([s.vsource_current("vdd") for _, s in lanes])
        )
    return np.array(volts), np.array(supply), lanes


def _assert_stats_match(batch, serial_lanes):
    for i, (_, s) in enumerate(serial_lanes):
        bs = batch.solvers[i]
        assert bs.stats.steps == s.stats.steps, f"lane {i} step count"
        assert bs.stats.factorizations == s.stats.factorizations, (
            f"lane {i} factorization count"
        )


class TestCrossBackendStepN:
    """Randomized lanes/seeds: c == numpy == serial, byte for byte."""

    @needs_c
    @settings(max_examples=5, deadline=None)
    @given(
        n_lanes=st.integers(1, 3),
        seed=st.integers(0, 2**16),
        cycles=st.integers(3, 10),
    )
    def test_c_vs_numpy_vs_serial(self, n_lanes, seed, cycles):
        rng = np.random.default_rng(seed)
        schedules = [_schedule(rng, cycles) for _ in range(n_lanes)]
        v_c, s_c, batch_c = _run_batch("c", schedules, cycles)
        v_np, s_np, batch_np = _run_batch("numpy", schedules, cycles)
        v_ref, s_ref, serial = _run_serial(schedules, cycles)

        assert batch_c.active_backend == "c"
        assert batch_np.active_backend == "numpy"
        assert v_c.tobytes() == v_np.tobytes(), "c/numpy voltages diverged"
        assert v_c.tobytes() == v_ref.tobytes(), "c/serial voltages diverged"
        assert s_c.tobytes() == s_np.tobytes(), "c/numpy vdd currents"
        assert s_c.tobytes() == s_ref.tobytes(), "c/serial vdd currents"
        _assert_stats_match(batch_c, serial)
        _assert_stats_match(batch_np, serial)


class TestMidRunRefactor:
    """A fault refactorization splits one lane's shard mid-run."""

    @needs_c
    @pytest.mark.parametrize("backend", ["c", "numpy"])
    def test_refactored_lane_stays_serial_identical(self, backend):
        cycles, refactor_at = 24, 10
        rng = np.random.default_rng(13)
        schedules = [_schedule(rng, cycles) for _ in range(3)]

        def degrade(k, lanes):
            if k == refactor_at:
                pdn, solver = lanes[1]
                pdn.circuit.elements_of_type(Resistor)[0].resistance *= 3.0
                solver.refactor()

        v_b, s_b, batch = _run_batch(
            backend, schedules, cycles, mutate=degrade
        )
        v_ref, s_ref, serial = _run_serial(schedules, cycles, mutate=degrade)
        assert v_b.tobytes() == v_ref.tobytes(), f"{backend} vs serial"
        assert s_b.tobytes() == s_ref.tobytes(), f"{backend} vdd currents"
        _assert_stats_match(batch, serial)
        # Value-identical lanes shared one LU; the refactored lane now
        # factorizes alone.
        assert batch.shard_count == 2


class TestGuardRecoveryAndQuarantine:
    @needs_c
    @pytest.mark.parametrize("backend", ["c", "numpy"])
    def test_poisoned_lu_recovers_via_refactor(self, backend):
        """Stage-1 guard recovery (refactorize + redo) across backends.

        Poisoning lane 0's LU in place also poisons its shard (the
        shard borrows the representative lane's factorization), so the
        fused step fails; the guard must roll the bad rows back, redo
        them serially, refactorize lane 0, and keep every lane
        bit-identical to a serially-guarded run.
        """
        cycles, poison_at = 16, 6
        rng = np.random.default_rng(17)
        schedules = [_schedule(rng, cycles) for _ in range(3)]

        def poison_batch(k, lanes):
            if k == poison_at:
                lanes[0][1]._lu[0][:] = np.nan

        def poison_serial(k, lanes):
            if k == poison_at:
                lanes[0][1]._lu[0][:] = np.nan

        n_lanes = len(schedules)
        currents_bt = np.zeros((n_lanes, NUM_SMS))
        lanes = [_make_lane(currents_bt[i]) for i in range(n_lanes)]
        batch = BatchTransientSolver(
            [s for _, s in lanes], shared_current_base=currents_bt
        )
        guard = BatchSolverGuard(batch)
        volts = []
        with forced_backend(backend):
            for k in range(cycles):
                poison_batch(k, lanes)
                for i in range(n_lanes):
                    lanes[i][0].set_sm_currents(schedules[i][k])
                node_v, failures = guard.step_cycle(SUBSTEPS, cycle=k)
                assert not failures, f"unexpected quarantine at cycle {k}"
                volts.append(node_v.copy())

        # Serial oracle: each lane behind its own SolverGuard.
        from repro.circuits import SolverGuard

        serial = [_make_lane() for _ in range(n_lanes)]
        serial_guards = [SolverGuard(s, lane=i) for i, (_, s) in
                         enumerate(serial)]
        ref_volts = []
        for k in range(cycles):
            poison_serial(k, serial)
            node_v = []
            for i in range(n_lanes):
                serial[i][0].set_sm_currents(schedules[i][k])
                node_v.append(serial_guards[i].step_cycle(SUBSTEPS, cycle=k))
            ref_volts.append(np.array(node_v))
        assert np.array(volts).tobytes() == np.array(ref_volts).tobytes()
        # Lane 0 recovered through exactly one refactorization, in both
        # drivers; the healthy lanes never entered the ladder.
        assert guard.guards[0].refactor_recoveries == 1
        assert serial_guards[0].refactor_recoveries == 1
        assert guard.counters()["divergences"] == 0
        for g in guard.guards[1:]:
            assert g.recoveries == 0

    @needs_c
    @pytest.mark.parametrize("backend", ["c", "numpy"])
    def test_nan_state_lane_is_quarantined(self, backend):
        """Unrecoverable reactive-state damage fails only its own lane."""
        cycles, poison_at = 12, 5
        rng = np.random.default_rng(19)
        schedules = [_schedule(rng, cycles) for _ in range(2)]
        currents_bt = np.zeros((2, NUM_SMS))
        lanes = [_make_lane(currents_bt[i]) for i in range(2)]
        batch = BatchTransientSolver(
            [s for _, s in lanes], shared_current_base=currents_bt
        )
        guard = BatchSolverGuard(batch)
        failures = {}
        with forced_backend(backend):
            for k in range(cycles):
                if k == poison_at:
                    lanes[1][1]._react_v[:] = np.nan
                for i in range(2):
                    lanes[i][0].set_sm_currents(schedules[i][k])
                _, failures = guard.step_cycle(SUBSTEPS, cycle=k)
                if failures:
                    break
        assert list(failures) == [1]
        assert guard.guards[1].counters()["divergences"] == 1
        assert guard.guards[0].counters()["divergences"] == 0


class TestInplaceProbeRegression:
    """The per-entry in-place probe (satellite fix): a copying ``getrs``
    wrapper must be detected per lane, never assumed from lane 0."""

    @staticmethod
    def _copying(getrs_f):
        def wrapper(lu, piv, b, overwrite_b=False):
            return getrs_f(lu, piv, np.array(b, copy=True),
                           overwrite_b=True)

        return wrapper

    def test_forced_copy_path_stays_serial_identical(self):
        cycles = 20
        rng = np.random.default_rng(23)
        schedules = [_schedule(rng, cycles) for _ in range(3)]
        n_lanes = len(schedules)
        currents_bt = np.zeros((n_lanes, NUM_SMS))
        lanes = [_make_lane(currents_bt[i]) for i in range(n_lanes)]
        # Patch the shard representative before the first solve: every
        # entry then probes False and must copy its solution back.
        lanes[0][1]._getrs = self._copying(lanes[0][1]._getrs)
        batch = BatchTransientSolver(
            [s for _, s in lanes], shared_current_base=currents_bt
        )
        volts = []
        with forced_backend("numpy"):
            for k in range(cycles):
                for i in range(n_lanes):
                    lanes[i][0].set_sm_currents(schedules[i][k])
                for _ in range(SUBSTEPS):
                    node_v = batch.step()
                volts.append(node_v.copy())
        v_ref, _s, _serial = _run_serial(schedules, cycles)
        assert np.array(volts).tobytes() == v_ref.tobytes()
        assert all(e[5] is False for e in batch._lane_solve)

    def test_mixed_copy_and_inplace_shards(self):
        """One copying shard next to an in-place shard: no cross-lane
        corruption (the pre-fix code assumed lane 0's verdict)."""
        cycles, split_at = 20, 0
        rng = np.random.default_rng(29)
        schedules = [_schedule(rng, cycles) for _ in range(3)]

        def split(k, lanes):
            if k == split_at:
                pdn, solver = lanes[1]
                pdn.circuit.elements_of_type(Resistor)[0].resistance *= 1.5
                solver.refactor()
                solver._getrs = TestInplaceProbeRegression._copying(
                    solver._getrs
                )

        n_lanes = len(schedules)
        currents_bt = np.zeros((n_lanes, NUM_SMS))
        lanes = [_make_lane(currents_bt[i]) for i in range(n_lanes)]
        batch = BatchTransientSolver(
            [s for _, s in lanes], shared_current_base=currents_bt
        )
        volts = []
        with forced_backend("numpy"):
            for k in range(cycles):
                split(k, lanes)
                for i in range(n_lanes):
                    lanes[i][0].set_sm_currents(schedules[i][k])
                for _ in range(SUBSTEPS):
                    node_v = batch.step()
                volts.append(node_v.copy())
        v_ref, _s, _serial = _run_serial(schedules, cycles, mutate=split)
        assert np.array(volts).tobytes() == v_ref.tobytes()
        # Lane 1 probed copy, its shard-mates probed in-place.
        verdicts = [e[5] for e in batch._lane_solve]
        assert verdicts[1] is False
        assert verdicts[0] is True and verdicts[2] is True


class TestCosimCrossBackend:
    """End-to-end: run_cosim_batch under each backend == serial."""

    @needs_c
    @settings(max_examples=3, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 2**10), min_size=2, max_size=3),
        bench_picks=st.lists(st.integers(0, 2), min_size=3, max_size=3),
        k1=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_both_backends_match_serial(self, seeds, bench_picks, k1):
        from repro.core.controller import ControllerConfig
        from repro.sim.cosim import (
            CosimConfig,
            CosimLane,
            run_cosim,
            run_cosim_batch,
        )

        benchmarks = ("hotspot", "bfs", "srad")
        lanes = []
        for i, seed in enumerate(seeds):
            kwargs = dict(cycles=160, warmup_cycles=30, seed=seed)
            if i == 1:
                kwargs["controller"] = ControllerConfig(k1=k1)
            lanes.append(
                CosimLane(
                    benchmark=benchmarks[bench_picks[i]],
                    config=CosimConfig(**kwargs),
                )
            )
        serial = [run_cosim(ln.benchmark, config=ln.config) for ln in lanes]
        for backend in ("c", "numpy"):
            with forced_backend(backend):
                batch = run_cosim_batch(list(lanes))
            for i, (b, s) in enumerate(zip(batch, serial)):
                label = f"{backend} lane {i}"
                assert np.array_equal(
                    b.power_trace.data, s.power_trace.data
                ), label
                assert np.array_equal(b.sm_voltages, s.sm_voltages), label
                assert np.array_equal(
                    b.supply_current, s.supply_current
                ), label
                assert b.instructions == s.instructions, label
                assert b.fake_instructions == s.fake_instructions, label
                assert b.throttled_cycles == s.throttled_cycles, label
                assert b.mean_dcc_power_w == s.mean_dcc_power_w, label
