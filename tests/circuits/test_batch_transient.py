"""Bit-identity contract of the lock-stepped batch transient solver.

``BatchTransientSolver`` fuses the per-step NumPy dispatch of B
same-topology :class:`TransientSolver` lanes; every step must return
node voltages byte-equal to stepping each lane alone — including after
a mid-run per-lane ``refactor()`` (a fault injector mutating one lane's
element values), and with per-lane state (``solution`` rows, vsource
currents, step statistics) staying coherent through the batch views.
"""

import numpy as np
import pytest

from repro.circuits import BatchTransientSolver
from repro.circuits.elements import Resistor
from repro.circuits.transient import TransientSolver
from repro.config import StackConfig
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.parameters import DEFAULT_PDN

DT = 1.0 / 700e6
NUM_SMS = StackConfig().num_sms
NOMINAL_A = 40.0 / NUM_SMS  # ~per-SM draw in amps, cosim's ballpark


def _make_lane(buffer=None):
    pdn = build_stacked_pdn(stack=StackConfig(), params=DEFAULT_PDN)
    pdn.bind_current_buffer(buffer)
    solver = TransientSolver(pdn.circuit, dt=DT)
    return pdn, solver


def _current_schedule(rng, steps):
    base = np.full(NUM_SMS, NOMINAL_A)
    return base * (0.2 + rng.random((steps, NUM_SMS)) * 1.6)


class TestBatchStepEquivalence:
    @pytest.mark.parametrize("n_lanes", [1, 3])
    def test_bit_identical_to_serial(self, n_lanes):
        steps = 160
        rng = np.random.default_rng(7)
        schedules = [_current_schedule(rng, steps) for _ in range(n_lanes)]

        currents_bt = np.zeros((n_lanes, NUM_SMS))
        batch_lanes = [_make_lane(currents_bt[i]) for i in range(n_lanes)]
        batch = BatchTransientSolver(
            [s for _, s in batch_lanes],
            shared_current_base=currents_bt,
        )
        serial_lanes = [_make_lane() for _ in range(n_lanes)]

        for k in range(steps):
            for i in range(n_lanes):
                batch_lanes[i][0].set_sm_currents(schedules[i][k])
                serial_lanes[i][0].set_sm_currents(schedules[i][k])
            node_v = batch.step()
            for i, (_, s) in enumerate(serial_lanes):
                ref = s.step()
                assert np.array_equal(node_v[i], ref), f"lane {i} step {k}"
            assert np.array_equal(
                batch.vsource_currents("vdd"),
                [s.vsource_current("vdd") for _, s in serial_lanes],
            ), f"vsource currents diverged at step {k}"
        for i, (_, s) in enumerate(serial_lanes):
            bs = batch.solvers[i]
            assert bs.stats.steps == s.stats.steps
            assert bs.time == pytest.approx(s.time)
            # Per-lane solution stays a coherent row view of the batch.
            assert np.shares_memory(bs.solution, batch._sol_bt)

    def test_mid_run_refactor_of_one_lane(self):
        steps, refactor_at = 120, 50
        rng = np.random.default_rng(11)
        schedules = [_current_schedule(rng, steps) for _ in range(3)]

        currents_bt = np.zeros((3, NUM_SMS))
        batch_lanes = [_make_lane(currents_bt[i]) for i in range(3)]
        batch = BatchTransientSolver(
            [s for _, s in batch_lanes],
            shared_current_base=currents_bt,
        )
        serial_lanes = [_make_lane() for _ in range(3)]

        def degrade(pdn, solver):
            """A fault injector's move: age one parasitic, refactor."""
            resistor = pdn.circuit.elements_of_type(Resistor)[0]
            resistor.resistance *= 3.0
            solver.refactor()

        for k in range(steps):
            if k == refactor_at:
                degrade(*batch_lanes[1])
                degrade(*serial_lanes[1])
            for i in range(3):
                batch_lanes[i][0].set_sm_currents(schedules[i][k])
                serial_lanes[i][0].set_sm_currents(schedules[i][k])
            node_v = batch.step()
            for i, (_, s) in enumerate(serial_lanes):
                assert np.array_equal(node_v[i], s.step()), (
                    f"lane {i} diverged at step {k} "
                    f"({'post' if k >= refactor_at else 'pre'}-refactor)"
                )


class TestBatchValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchTransientSolver([])

    def test_unknown_vsource_rejected(self):
        currents = np.zeros((1, NUM_SMS))
        _, solver = _make_lane(currents[0])
        batch = BatchTransientSolver([solver], shared_current_base=currents)
        with pytest.raises(KeyError, match="nope"):
            batch.vsource_currents("nope")
