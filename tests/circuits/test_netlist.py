"""Unit tests for the Circuit netlist container."""

import pytest

from repro.circuits import Circuit, Resistor
from repro.circuits.netlist import GROUND


def simple_divider() -> Circuit:
    ckt = Circuit("divider")
    ckt.add_voltage_source("vin", "in", GROUND, 4.0)
    ckt.add_resistor("r1", "in", "mid", 1.0)
    ckt.add_resistor("r2", "mid", GROUND, 3.0)
    return ckt


class TestRegistration:
    def test_duplicate_names_rejected(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            ckt.add_resistor("r1", "b", "0", 1.0)

    def test_node_indices_assigned_in_insertion_order(self):
        ckt = simple_divider()
        assert ckt.nodes == ["in", "mid"]
        assert ckt.node_index("in") == 0
        assert ckt.node_index("mid") == 1

    def test_ground_has_no_index(self):
        ckt = simple_divider()
        assert ckt.node_index(GROUND) is None

    def test_unknown_node_raises(self):
        ckt = simple_divider()
        with pytest.raises(KeyError, match="unknown node"):
            ckt.node_index("nope")

    def test_len_and_iteration(self):
        ckt = simple_divider()
        assert len(ckt) == 3
        assert [e.name for e in ckt] == ["vin", "r1", "r2"]

    def test_contains_and_lookup(self):
        ckt = simple_divider()
        assert "r1" in ckt
        assert ckt.element("r1").node_pos == "in"
        with pytest.raises(KeyError):
            ckt.element("zz")

    def test_elements_of_type(self):
        ckt = simple_divider()
        resistors = ckt.elements_of_type(Resistor)
        assert {r.name for r in resistors} == {"r1", "r2"}


class TestValidation:
    def test_empty_circuit_invalid(self):
        with pytest.raises(ValueError, match="empty"):
            Circuit().validate()

    def test_floating_circuit_invalid(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", "b", 1.0)
        with pytest.raises(ValueError, match="ground"):
            ckt.validate()

    def test_grounded_circuit_valid(self):
        simple_divider().validate()
