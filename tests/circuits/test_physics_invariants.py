"""Deeper physics invariants of the circuit engine.

Classical theorems any correct linear circuit simulator must satisfy:

* **reciprocity** — in a passive RLC network, the transfer impedance
  from port A to port B equals the one from B to A;
* **transient superposition** — the deviation response to a sum of load
  steps is the sum of the individual deviation responses;
* **energy dissipation** — an undriven network's stored energy never
  increases;
* **charge conservation** — the supply delivers exactly what loads and
  losses absorb in steady state.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import ACAnalysis, Circuit, TransientSolver


def pdn_like_network():
    """A small PDN-flavoured network with R, L and C all present."""
    ckt = Circuit("pdnlike")
    ckt.add_voltage_source("vdd", "in", "0", 1.0)
    ckt.add_resistor("r1", "in", "a", 0.01)
    ckt.add_inductor("l1", "a", "b", 5e-10)
    ckt.add_resistor("r2", "b", "c", 0.05)
    ckt.add_capacitor("c1", "b", "0", 3e-9)
    ckt.add_capacitor("c2", "c", "0", 8e-9)
    ckt.add_resistor("r3", "c", "0", 2.0)
    return ckt


class TestReciprocity:
    @pytest.mark.parametrize("freq", [1e6, 2e7, 3e8])
    def test_transfer_impedance_symmetric(self, freq):
        ckt = pdn_like_network()
        ac = ACAnalysis(ckt)
        z_ab = ac.transfer_impedance(freq, {"a": 1.0}, "c")
        z_ba = ac.transfer_impedance(freq, {"c": 1.0}, "a")
        assert z_ab == pytest.approx(z_ba, rel=1e-9)

    def test_reciprocity_on_the_stacked_pdn(self):
        """The full VS netlist is reciprocal too (it is passive RLC)."""
        from repro.pdn.builder import build_stacked_pdn, tap_node

        pdn = build_stacked_pdn()
        ac = ACAnalysis(pdn.circuit)
        a, b = tap_node(1, 0), tap_node(3, 2)
        for freq in (2e6, 6e7):
            z_ab = ac.transfer_impedance(freq, {a: 1.0}, b)
            z_ba = ac.transfer_impedance(freq, {b: 1.0}, a)
            assert z_ab == pytest.approx(z_ba, rel=1e-9)


class TestTransientSuperposition:
    def _response(self, i1, i2, steps=400):
        ckt = pdn_like_network()
        load1 = ckt.add_current_source("load1", "b", "0", 0.0)
        load2 = ckt.add_current_source("load2", "c", "0", 0.0)
        solver = TransientSolver(ckt, dt=2e-10)
        solver.initialize_dc()
        load1.override = i1
        load2.override = i2
        out = np.empty(steps)
        c_index = solver.structure.node("c")
        for k in range(steps):
            out[k] = solver.step()[c_index]
        return out

    @given(
        i1=st.floats(min_value=0.1, max_value=3.0),
        i2=st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_deviations_add(self, i1, i2):
        zero = self._response(0.0, 0.0)
        only1 = self._response(i1, 0.0) - zero
        only2 = self._response(0.0, i2) - zero
        both = self._response(i1, i2) - zero
        assert np.max(np.abs(both - (only1 + only2))) < 1e-9


class TestEnergyBehaviour:
    def test_undriven_energy_never_increases(self):
        # No sources: an initially charged cap rings into the network
        # and its total stored energy must decay monotonically (within
        # trapezoidal round-off).
        ckt = Circuit("ring")
        ckt.add_resistor("rref", "a", "0", 1e6)  # ground reference
        ckt.add_inductor("l", "a", "b", 1e-9)
        ckt.add_resistor("r", "b", "c", 0.05)
        ckt.add_capacitor("cs", "c", "0", 1e-8, v0=1.0)
        ckt.add_capacitor("ca", "a", "0", 1e-8, v0=0.0)
        solver = TransientSolver(ckt, dt=1e-10)
        # Start from the stated ICs, not DC.
        energies = []
        for _ in range(3000):
            solver.step()
            e = 0.0
            for cap, v in zip(solver.capacitors, solver._cap_v):
                e += 0.5 * cap.capacitance * v**2
            for ind, i in zip(solver.inductors, solver._ind_i):
                e += 0.5 * ind.inductance * i**2
            energies.append(e)
        energies = np.array(energies)
        # Monotone non-increasing within numerical tolerance.
        assert np.all(np.diff(energies) <= 1e-12)
        # Charge sharing between the two equal caps dissipates exactly
        # half the initial energy (the classic two-capacitor result).
        assert energies[-1] == pytest.approx(0.5 * energies[0], rel=1e-3)

    def test_steady_state_power_balance(self):
        """Supply power equals load power plus resistive losses."""
        ckt = Circuit("balance")
        ckt.add_voltage_source("vdd", "in", "0", 1.0)
        ckt.add_resistor("rpdn", "in", "chip", 0.05)
        ckt.add_capacitor("cd", "chip", "0", 1e-9)
        load = ckt.add_current_source("load", "chip", "0", 2.0)
        solver = TransientSolver(ckt, dt=1e-10)
        solver.initialize_dc()
        for _ in range(2000):
            solver.step()
        v_chip = solver.node_voltage("chip")
        i_in = solver.vsource_current("vdd")
        p_supply = 1.0 * i_in
        p_load = v_chip * 2.0
        p_loss = (1.0 - v_chip) * i_in
        assert p_supply == pytest.approx(p_load + p_loss, rel=1e-9)
        # And the IR drop is exactly I*R.
        assert 1.0 - v_chip == pytest.approx(2.0 * 0.05, rel=1e-6)
