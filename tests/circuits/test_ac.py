"""AC analysis tests against closed-form impedance formulas."""

import math

import numpy as np
import pytest

from repro.circuits import ACAnalysis, Circuit
from repro.circuits.ac import log_frequency_grid


def parallel_rc(r=10.0, c=1e-9):
    ckt = Circuit("prc")
    ckt.add_resistor("r", "port", "0", r)
    ckt.add_capacitor("c", "port", "0", c)
    return ckt


class TestDrivingPointImpedance:
    def test_resistor_flat(self):
        ckt = Circuit("r")
        ckt.add_resistor("r", "port", "0", 7.0)
        ac = ACAnalysis(ckt)
        for f in [1e6, 1e7, 1e8]:
            z = ac.transfer_impedance(f, {"port": 1.0}, "port")
            assert abs(z) == pytest.approx(7.0, rel=1e-9)

    def test_parallel_rc_rolloff(self):
        r, c = 10.0, 1e-9
        ac = ACAnalysis(parallel_rc(r, c))
        f = 1e8
        expected = abs(1 / (1 / r + 1j * 2 * math.pi * f * c))
        z = abs(ac.transfer_impedance(f, {"port": 1.0}, "port"))
        assert z == pytest.approx(expected, rel=1e-9)

    def test_series_rlc_resonance_peak(self):
        # Supply -> L -> port with decap C: parallel resonance at
        # f0 = 1/(2*pi*sqrt(LC)) where impedance peaks.
        l, c, r = 1e-9, 100e-9, 0.01
        f0 = 1 / (2 * math.pi * math.sqrt(l * c))
        ckt = Circuit("pdn")
        ckt.add_voltage_source("vdd", "board", "0", 1.0)
        ckt.add_resistor("rpkg", "board", "bump", r)
        ckt.add_inductor("lpkg", "bump", "port", l)
        ckt.add_capacitor("cdecap", "port", "0", c)
        ac = ACAnalysis(ckt)
        freqs = log_frequency_grid(f0 / 30, f0 * 30, points_per_decade=60)
        mags = ac.impedance_sweep(freqs, {"port": -1.0}, "port")
        peak_freq = freqs[int(np.argmax(np.abs(mags)))]
        assert peak_freq == pytest.approx(f0, rel=0.05)

    def test_voltage_source_is_ac_ground(self):
        # Injecting current into a node held by an ideal source yields ~0 V.
        ckt = Circuit("vsrc")
        ckt.add_voltage_source("vdd", "rail", "0", 1.0)
        ckt.add_resistor("r", "rail", "port", 1.0)
        ac = ACAnalysis(ckt)
        phasors = ac.solve(1e6, {"rail": 1.0})
        assert abs(phasors["rail"]) < 1e-12


class TestInterface:
    def test_rejects_nonpositive_frequency(self):
        ac = ACAnalysis(parallel_rc())
        with pytest.raises(ValueError, match="frequency"):
            ac.solve(0.0, {"port": 1.0})

    def test_rejects_injection_into_ground(self):
        ac = ACAnalysis(parallel_rc())
        with pytest.raises(ValueError, match="ground"):
            ac.solve(1e6, {"0": 1.0})

    def test_sweep_shape(self):
        ac = ACAnalysis(parallel_rc())
        freqs = [1e6, 1e7, 1e8]
        mags = ac.impedance_sweep(freqs, {"port": 1.0}, "port")
        assert mags.shape == (3,)
        # RC rolls off monotonically.
        assert mags[0] > mags[1] > mags[2]


class TestFrequencyGrid:
    def test_endpoints_included(self):
        grid = log_frequency_grid(1e6, 1e9, points_per_decade=10)
        assert grid[0] == pytest.approx(1e6)
        assert grid[-1] == pytest.approx(1e9)

    def test_monotone_increasing(self):
        grid = log_frequency_grid(1e6, 5e8)
        assert np.all(np.diff(grid) > 0)

    @pytest.mark.parametrize("start,stop", [(0.0, 1e6), (1e7, 1e6), (1e6, 1e6)])
    def test_rejects_bad_ranges(self, start, stop):
        with pytest.raises(ValueError):
            log_frequency_grid(start, stop)
