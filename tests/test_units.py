"""Unit-helper tests."""

import pytest

from repro import units


class TestConversions:
    def test_milliohm(self):
        assert units.m_ohm(250) == pytest.approx(0.25)

    def test_inductances(self):
        assert units.n_henry(60) == pytest.approx(60e-9)
        assert units.p_henry(60) == pytest.approx(60e-12)

    def test_capacitances(self):
        assert units.u_farad(1) == pytest.approx(1e-6)
        assert units.n_farad(64) == pytest.approx(64e-9)
        assert units.p_farad(2) == pytest.approx(2e-12)

    def test_frequency_and_time(self):
        assert units.mega_hertz(700) == pytest.approx(700e6)
        assert units.nano_second(3) == pytest.approx(3e-9)
        assert units.micro_second(3) == pytest.approx(3e-6)

    def test_mm2_identity(self):
        assert units.mm2(105.8) == 105.8


class TestCycleConversions:
    def test_roundtrip(self):
        f = 700e6
        assert units.seconds_to_cycles(
            units.cycles_to_seconds(60, f), f
        ) == pytest.approx(60)

    def test_sixty_cycles_at_700mhz(self):
        assert units.cycles_to_seconds(60, 700e6) == pytest.approx(85.7e-9, rel=1e-3)

    @pytest.mark.parametrize("func", ["cycles_to_seconds", "seconds_to_cycles"])
    def test_rejects_nonpositive_frequency(self, func):
        with pytest.raises(ValueError):
            getattr(units, func)(1.0, 0.0)
