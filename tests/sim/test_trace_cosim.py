"""Tests for the trace-driven fast PDN simulation."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.sim.trace_cosim import (
    apply_actuation_replay,
    replay_trace,
)
from repro.workloads.traces import PowerTrace


def balanced_trace(cycles=200, watts=4.0):
    return PowerTrace(np.full((cycles, 16), watts), name="flat")


def imbalanced_trace(cycles=400):
    data = np.full((cycles, 16), 4.0)
    data[cycles // 2 :, 12:] = 1.2  # top layer drops mid-trace
    return PowerTrace(data, name="imbalanced")


class TestReplay:
    def test_balanced_trace_stays_near_nominal(self):
        result = replay_trace(balanced_trace(), cr_ivr_area_mm2=105.8)
        assert result.sm_voltages.shape == (200, 16)
        assert abs(np.median(result.sm_voltages) - 1.025) < 0.03
        assert result.noise_std() < 0.02

    def test_imbalance_droops_without_cr_ivr(self):
        result = replay_trace(imbalanced_trace(), cr_ivr_area_mm2=0.0)
        assert result.min_voltage < 0.8

    def test_cr_ivr_improves_imbalanced_replay(self):
        bare = replay_trace(imbalanced_trace(), cr_ivr_area_mm2=0.0)
        regulated = replay_trace(imbalanced_trace(), cr_ivr_area_mm2=900.0)
        assert regulated.min_voltage > bare.min_voltage + 0.1

    def test_supply_current_tracks_load(self):
        result = replay_trace(balanced_trace(watts=4.0))
        expected = 4.0 * 16 / 4.1
        assert result.supply_current.mean() == pytest.approx(expected, rel=0.2)

    def test_validates_stack_match(self):
        trace = PowerTrace(np.ones((10, 16)))
        with pytest.raises(ValueError, match="SMs"):
            replay_trace(
                trace, stack=StackConfig(num_layers=2, num_columns=2)
            )

    def test_validates_substeps(self):
        with pytest.raises(ValueError, match="substep"):
            replay_trace(balanced_trace(), circuit_substeps=0)


class TestActuationReplay:
    def test_identity_when_no_actuation(self):
        trace = balanced_trace()
        out = apply_actuation_replay(trace, issue_scale=1.0, fake_power_w=0.0)
        assert np.allclose(out.data, trace.data)

    def test_fake_power_added_uniformly(self):
        trace = balanced_trace()
        out = apply_actuation_replay(trace, fake_power_w=0.5)
        assert np.allclose(out.data, trace.data + 0.5)

    def test_diws_preserves_total_energy_when_deferrable(self):
        # A trace with headroom: shaved energy is re-released, so total
        # energy is (nearly) conserved.
        rng = np.random.default_rng(5)
        data = 1.2 + rng.uniform(0.0, 3.0, (500, 16))
        trace = PowerTrace(data, name="bursty")
        out = apply_actuation_replay(trace, issue_scale=0.8)
        assert out.data.sum() == pytest.approx(trace.data.sum(), rel=0.05)

    def test_diws_caps_peak_dynamic_power(self):
        trace = balanced_trace(watts=6.0)
        out = apply_actuation_replay(trace, issue_scale=0.5)
        leakage = 1.2
        peak_dynamic_before = trace.data.max() - leakage
        assert out.data.max() - leakage <= peak_dynamic_before * 0.5 + 1e-9

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            apply_actuation_replay(balanced_trace(), issue_scale=0.0)
        with pytest.raises(ValueError):
            apply_actuation_replay(balanced_trace(), fake_power_w=-1.0)


class TestConsistencyWithClosedLoop:
    def test_replay_matches_cosim_noise_scale(self):
        """Open-loop replay of a cosim's own trace lands in the same
        noise regime (the trace-driven methodology sanity check)."""
        from repro.sim.cosim import CosimConfig, run_cosim

        closed = run_cosim(
            "heartwall",
            CosimConfig(cycles=800, warmup_cycles=200, seed=5,
                        use_controller=False),
        )
        replay = replay_trace(closed.power_trace, cr_ivr_area_mm2=105.8)
        closed_std = float(closed.sm_voltages.std())
        replay_std = replay.noise_std()
        assert replay_std == pytest.approx(closed_std, rel=0.5)
