"""Equivalence contract of the batched co-sim engine, plus the co-sim
accounting regressions that rode along with it.

``run_cosim_batch`` steps B independent scenarios lock-stepped; the
serial ``run_cosim`` is its bit-identity oracle — a B-lane batch must
reproduce B independent serial runs *byte for byte*, for every field of
every :class:`CosimResult`, under mixed benchmarks, seeds, controller
gains, disabled controllers, per-object GPU lanes and canned fault
scenarios.  These tests drive both paths side by side (randomized via
hypothesis and through canned scenarios) and pin the three accounting
bugfixes: decision-array ownership at the control boundary, completed
kernel-interval counting, and applied-vs-commanded DCC ledgering.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import pde_loss_ledger
from repro.core.controller import ControlDecision, ControllerConfig
from repro.faults.scenarios import CANNED_SCENARIOS
from repro.sim.cosim import (
    CosimConfig,
    CosimLane,
    run_cosim,
    run_cosim_batch,
)

CYCLES = 260
WARMUP = 40


def _assert_result_equal(batch, serial, label=""):
    """Byte-equality of every CosimResult field."""
    assert np.array_equal(
        batch.power_trace.data, serial.power_trace.data
    ), f"{label}: power trace diverged"
    assert np.array_equal(
        batch.sm_voltages, serial.sm_voltages
    ), f"{label}: sm_voltages diverged"
    assert np.array_equal(
        batch.supply_current, serial.supply_current
    ), f"{label}: supply_current diverged"
    assert batch.benchmark == serial.benchmark
    assert batch.stack == serial.stack
    assert batch.instructions == serial.instructions, label
    assert batch.fake_instructions == serial.fake_instructions, label
    assert batch.throttled_cycles == serial.throttled_cycles, label
    assert batch.controller_power_w == serial.controller_power_w, label
    assert batch.kernels_completed == serial.kernels_completed, label
    assert batch.mean_dcc_power_w == serial.mean_dcc_power_w, label
    assert np.array_equal(
        batch.kernel_durations, serial.kernel_durations
    ), f"{label}: kernel_durations diverged"
    assert batch.fault_report == serial.fault_report, label


def _check_batch(lanes):
    batch = run_cosim_batch(lanes)
    assert len(batch) == len(lanes)
    for i, (lane, result) in enumerate(zip(lanes, batch)):
        serial = run_cosim(lane.benchmark, config=lane.config)
        _assert_result_equal(result, serial, label=f"lane {i} ({lane.benchmark})")


# Three paper benchmarks with distinct power/kernel shapes.
BENCHMARKS = ("hotspot", "backprop", "bfs")


class TestBatchValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one lane"):
            run_cosim_batch([])

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cycles", CYCLES + 16),
            ("warmup_cycles", WARMUP + 8),
            ("circuit_substeps", 2),
            ("cr_ivr_area_mm2", 211.6),
        ],
    )
    def test_topology_family_mismatch_rejected(self, field, value):
        base = dict(cycles=CYCLES, warmup_cycles=WARMUP, circuit_substeps=1)
        odd = dict(base)
        odd[field] = value
        lanes = [
            CosimLane(benchmark="hotspot", config=CosimConfig(**base)),
            CosimLane(benchmark="hotspot", config=CosimConfig(**odd)),
        ]
        with pytest.raises(ValueError, match=field):
            run_cosim_batch(lanes)


class TestRandomizedBatchEquivalence:
    """Randomized B, benchmarks, seeds and gains — byte-equality per lane."""

    @settings(max_examples=6, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 2**20), min_size=1, max_size=4),
        bench_picks=st.lists(st.integers(0, len(BENCHMARKS) - 1),
                             min_size=4, max_size=4),
        k1=st.sampled_from([0.5, 1.0, 2.0]),
        k2=st.sampled_from([2.0, 4.0]),
        drop_controller=st.booleans(),
    )
    def test_mixed_lanes(self, seeds, bench_picks, k1, k2, drop_controller):
        lanes = []
        for i, seed in enumerate(seeds):
            kwargs = dict(cycles=CYCLES, warmup_cycles=WARMUP, seed=seed)
            if i == 1:
                kwargs["controller"] = ControllerConfig(k1=k1, k2=k2)
            if i == 2 and drop_controller:
                kwargs["use_controller"] = False
            lanes.append(
                CosimLane(
                    benchmark=BENCHMARKS[bench_picks[i]],
                    config=CosimConfig(**kwargs),
                )
            )
        _check_batch(lanes)

    def test_per_object_gpu_lane(self):
        """A non-vectorized lane batches with vectorized ones."""
        _check_batch([
            CosimLane("hotspot", CosimConfig(
                cycles=CYCLES, warmup_cycles=WARMUP, seed=3)),
            CosimLane("srad", CosimConfig(
                cycles=CYCLES, warmup_cycles=WARMUP, seed=4,
                vectorized_gpu=False)),
        ])

    def test_single_lane_batch(self):
        _check_batch([
            CosimLane("pathfinder", CosimConfig(
                cycles=CYCLES, warmup_cycles=WARMUP, seed=11)),
        ])


class TestCannedFaultBatch:
    @pytest.mark.parametrize("scenario", ["guardband-breaker", "sensor-storm"])
    def test_fault_lane_batches_bit_identically(self, scenario):
        cyc, wu = 700, 80
        _check_batch([
            CosimLane("hotspot", CosimConfig(cycles=cyc, warmup_cycles=wu)),
            CosimLane("hotspot", CosimConfig(
                cycles=cyc, warmup_cycles=wu,
                faults=CANNED_SCENARIOS[scenario]())),
            CosimLane("bfs", CosimConfig(
                cycles=cyc, warmup_cycles=wu, use_controller=False)),
        ])


# ---------------------------------------------------------------------------
# Accounting regressions (serial path)
# ---------------------------------------------------------------------------
class _ScriptedController:
    """Minimal controller duck-type: fixed widths, scripted DCC."""

    def __init__(self, num_sms, dcc_w=1.0, final_dcc_w=None):
        self.num_sms = num_sms
        self.throttled_cycles = 0
        self.dcc_w = dcc_w
        self.final_dcc_w = final_dcc_w
        self.last_observe_cycle = -1
        self.decision = ControlDecision(
            issue_widths=np.full(num_sms, 2.0),
            fake_rates=np.zeros(num_sms),
            dcc_powers_w=np.full(num_sms, dcc_w),
        )
        # Snapshots taken at hand-off: the ownership contract says the
        # loop must never write into these controller-owned arrays.
        self.handed_out = (
            self.decision.issue_widths.copy(),
            self.decision.fake_rates.copy(),
            self.decision.dcc_powers_w.copy(),
        )

    def observe(self, cycle, voltages):
        self.last_observe_cycle = cycle

    def commands_for(self, cycle):
        return self.decision

    def arrays_unmutated(self):
        return (
            np.array_equal(self.decision.issue_widths, self.handed_out[0])
            and np.array_equal(self.decision.fake_rates, self.handed_out[1])
            and np.array_equal(self.decision.dcc_powers_w, self.handed_out[2])
        )


class TestDecisionOwnershipRegression:
    """The control boundary copies what it retains or mutates.

    ``run_cosim`` zeroes halted SMs' issue widths and holds the DCC
    command across cycles; both must act on loop-owned copies.  Before
    the fix the DCC vector was aliased (``dcc_powers = dcc``), so a
    controller reusing its decision buffer — or the loop mutating
    ``widths`` in place for a halted layer — corrupted the enqueued
    decision the controller still owned.
    """

    def test_loop_never_mutates_controller_arrays(self):
        from repro.sim.cosim import LayerShutoffEvent

        num_sms = 16
        ctrl = _ScriptedController(num_sms, dcc_w=0.25)
        result = run_cosim(
            "hotspot",
            CosimConfig(
                cycles=CYCLES, warmup_cycles=WARMUP,
                controller_object=ctrl,
                # A shutoff forces the halted-SM width zeroing that
                # would corrupt an aliased issue_widths array.
                shutoff=LayerShutoffEvent(layer=3, start_cycle=0),
            ),
        )
        assert ctrl.last_observe_cycle == CYCLES + WARMUP - 1
        assert ctrl.arrays_unmutated(), (
            "co-sim loop wrote into controller-owned decision arrays"
        )
        # The halted layer was still actuated (widths were zeroed on the
        # loop's own copy): its SMs idle at leakage-level power.
        halted = result.power_trace.data[:, 12:16]
        live = result.power_trace.data[:, 0:4]
        assert halted.mean() < 0.5 * live.mean()


class TestKernelAccountingRegression:
    """``kernels_completed`` counts completed kernel *intervals* in the
    recorded window — exactly ``len(kernel_durations)``, never the raw
    launch count (which over-counts the still-running kernel by one)."""

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_completed_matches_durations(self, bench):
        result = run_cosim(bench, CosimConfig(
            cycles=900, warmup_cycles=100, seed=5))
        assert result.kernels_completed == len(result.kernel_durations)
        if result.kernels_completed:
            assert result.cycles_per_kernel() == pytest.approx(
                float(np.mean(result.kernel_durations))
            )

    def test_single_launch_window_counts_zero_completions(self):
        # A window too short for a second launch: one kernel is running
        # but none *completed*, so the mean-duration guard must trip.
        result = run_cosim("heartwall", CosimConfig(
            cycles=40, warmup_cycles=20, seed=2))
        assert result.kernels_completed == len(result.kernel_durations)
        if result.kernels_completed == 0:
            with pytest.raises(ValueError):
                result.cycles_per_kernel()


class TestAppliedDccLedgerRegression:
    """``mean_dcc_power_w`` ledgers the power the PDN *saw* each cycle,
    not the command enqueued for the next cycle.  A command issued on
    the final cycle is never applied and must not enter the mean."""

    def test_final_cycle_command_never_ledgered(self):
        num_sms = 16
        cycles, warmup = 200, 30

        class FinalSpikeController(_ScriptedController):
            def commands_for(self, cycle):
                if cycle == cycles + warmup - 1:
                    # Never applied: there is no next cycle.
                    self.decision.dcc_powers_w[:] = 50.0
                return self.decision

        ctrl = FinalSpikeController(num_sms, dcc_w=1.0)
        result = run_cosim(
            "hotspot",
            CosimConfig(
                cycles=cycles, warmup_cycles=warmup,
                controller_object=ctrl,
            ),
        )
        # Every recorded cycle applied exactly 1.0 W/SM (commanded one
        # cycle earlier); the 50 W/SM final command never reached the
        # PDN, so the mean is exactly num_sms * 1.0.
        assert result.mean_dcc_power_w == pytest.approx(float(num_sms))
        assert result.mean_dcc_power_w < 2.0 * num_sms

    def test_pde_ledger_closes_with_dcc_active(self):
        result = run_cosim("heartwall", CosimConfig(
            cycles=900, warmup_cycles=100, seed=7))
        ledger = pde_loss_ledger(result)
        assert ledger.closes(0.01), (
            f"PDE ledger open by {ledger.closure_rel_error:.3%}"
        )


class TestSweepBatchEquality:
    """`SweepRunner(batch_size=B)` metrics equal the per-point sweep."""

    def test_batched_sweep_matches_serial(self):
        from repro.sim.sweep import run_sweep

        base = CosimConfig(cycles=300, warmup_cycles=50)
        kwargs = dict(
            benchmarks=["hotspot", "bfs"],
            axes={"cr_ivr_area_mm2": [52.9, 105.8]},
            base_config=base,
            base_seed=3,
            max_workers=1,
        )
        serial = run_sweep(**kwargs)
        batched = run_sweep(batch_size=4, **kwargs)
        assert batched.num_failed == 0
        for a, b in zip(serial.points, batched.points):
            assert a.point.index == b.point.index
            assert a.metrics == b.metrics

    def test_batches_group_by_topology_family(self):
        from repro.sim.sweep import SweepRunner, expand_grid

        base = CosimConfig(cycles=300, warmup_cycles=50)
        points = expand_grid(
            ["hotspot", "bfs"], {"cr_ivr_area_mm2": [52.9, 105.8]},
            base_seed=3,
        )
        runner = SweepRunner(points, base, batch_size=4)
        groups = runner._group_batches(points)
        # Four points, two areas: one batch per area, grid order kept.
        assert sorted(tuple(p.index for p in g) for g in groups) == [
            (0, 2), (1, 3),
        ]
        for group in groups:
            areas = {dict(p.overrides)["cr_ivr_area_mm2"] for p in group}
            assert len(areas) == 1
