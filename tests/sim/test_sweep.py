"""Tests for the parallel sweep runner."""

import json

import numpy as np
import pytest

from repro.sim.cosim import CosimConfig
from repro.sim.sweep import (
    SweepPoint,
    SweepPointResult,
    SweepResult,
    SweepRunner,
    expand_grid,
    point_seed,
    run_sweep,
)

# Tiny runs: the sweep machinery is under test, not the physics.
FAST = CosimConfig(cycles=40, warmup_cycles=10)


class TestGridExpansion:
    def test_cartesian_product_size(self):
        points = expand_grid(
            ["hotspot", "bfs"],
            {"cr_ivr_area_mm2": [52.9, 105.8, 211.6], "circuit_substeps": [1, 2]},
        )
        assert len(points) == 2 * 3 * 2

    def test_indices_are_grid_order(self):
        points = expand_grid(["hotspot"], {"cr_ivr_area_mm2": [1.0, 2.0]})
        assert [p.index for p in points] == [0, 1]
        assert [dict(p.overrides)["cr_ivr_area_mm2"] for p in points] == [1.0, 2.0]

    def test_no_axes_is_one_point_per_benchmark(self):
        points = expand_grid(["hotspot", "bfs", "srad"])
        assert len(points) == 3
        assert all(p.overrides == () for p in points)

    def test_unknown_field_fails_fast(self):
        with pytest.raises(ValueError, match="unknown CosimConfig field"):
            expand_grid(["hotspot"], {"not_a_field": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid(["hotspot"], {"cr_ivr_area_mm2": []})

    def test_empty_benchmarks_rejected(self):
        with pytest.raises(ValueError, match="benchmark"):
            expand_grid([])

    def test_overrides_applied_to_config(self):
        point = expand_grid(["hotspot"], {"cr_ivr_area_mm2": [211.6]})[0]
        config = point.config(FAST)
        assert config.cr_ivr_area_mm2 == 211.6
        assert config.cycles == FAST.cycles

    def test_dotted_axis_reaches_nested_config(self):
        """Dotted names sweep nested dataclass knobs (controller gains)
        while keeping the override values JSON-scalar — checkpoints and
        the result store never have to serialize a ControllerConfig."""
        points = expand_grid(["hotspot"], {"controller.k2": [0.05, 0.2]})
        assert [dict(p.overrides)["controller.k2"] for p in points] == [
            0.05, 0.2
        ]
        config = points[1].config(FAST)
        assert config.controller.k2 == 0.2
        # Untouched sibling fields come from the base controller config.
        assert config.controller.k1 == FAST.controller.k1
        assert config.cycles == FAST.cycles

    def test_dotted_axis_combines_with_flat_axes(self):
        points = expand_grid(
            ["hotspot"],
            {"cr_ivr_area_mm2": [52.9], "controller.k3": [0.0, 0.4]},
        )
        assert len(points) == 2
        config = points[0].config(FAST)
        assert config.cr_ivr_area_mm2 == 52.9
        assert config.controller.k3 == 0.0

    def test_dotted_axis_unknown_head_or_leaf_fails_fast(self):
        with pytest.raises(ValueError, match="unknown CosimConfig field"):
            expand_grid(["hotspot"], {"nope.k2": [1]})
        with pytest.raises(ValueError, match="unknown"):
            expand_grid(["hotspot"], {"controller.not_a_gain": [1]})
        with pytest.raises(ValueError, match="not a nested config|unknown"):
            expand_grid(["hotspot"], {"cycles.k2": [1]})

    def test_dotted_point_round_trips_through_records(self):
        point = expand_grid(["hotspot"], {"controller.k2": [0.2]})[0]
        result = SweepPointResult(point=point, ok=True, metrics={})
        rebuilt = SweepPointResult.from_record(
            json.loads(json.dumps(result.to_record()))
        )
        assert rebuilt.point == point
        assert rebuilt.point.config(FAST).controller.k2 == 0.2


class TestSeeding:
    def test_deterministic_across_expansions(self):
        a = expand_grid(["hotspot", "bfs"], {"circuit_substeps": [1, 2]}, base_seed=9)
        b = expand_grid(["hotspot", "bfs"], {"circuit_substeps": [1, 2]}, base_seed=9)
        assert [p.seed for p in a] == [p.seed for p in b]

    def test_distinct_per_point(self):
        points = expand_grid(["hotspot"] * 3, {"circuit_substeps": [1, 2]})
        seeds = [p.seed for p in points]
        assert len(set(seeds)) == len(seeds)

    def test_base_seed_changes_seeds(self):
        assert point_seed(1, 0) != point_seed(2, 0)

    def test_seed_reaches_config(self):
        point = expand_grid(["hotspot"], base_seed=5)[0]
        assert point.config(FAST).seed == point.seed
        assert point.seed == point_seed(5, 0)

    def test_explicit_seed_axis_wins(self):
        point = SweepPoint(index=0, benchmark="hotspot",
                           overrides=(("seed", 42),), seed=7)
        assert point.config(FAST).seed == 42


class TestRunnerInline:
    """max_workers=1 runs in-process — the fast path for unit tests."""

    def test_failure_captured_not_fatal(self):
        result = run_sweep(
            ["hotspot", "__does_not_exist__"],
            base_config=FAST,
            max_workers=1,
        )
        assert len(result.points) == 2
        ok, bad = result.points
        assert ok.ok and ok.metrics["min_voltage_v"] > 0.5
        assert not bad.ok
        assert "unknown benchmark" in bad.error
        assert result.num_failed == 1

    def test_metrics_cover_warmup_fixed_counters(self):
        result = run_sweep(["hotspot"], base_config=FAST, max_workers=1)
        metrics = result.points[0].metrics
        for key in ("fake_instructions", "throttled_cycles",
                    "cycles_per_kernel", "pde", "throughput_ipc"):
            assert key in metrics

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_sweep(
            ["hotspot", "bfs"], base_config=FAST, max_workers=1,
            progress=seen.append,
        )
        assert [r.point.index for r in seen] == [0, 1]

    def test_rejects_live_controller_object(self):
        config = CosimConfig(
            cycles=10, warmup_cycles=0, controller_object=object()
        )
        with pytest.raises(ValueError, match="controller_object"):
            SweepRunner(expand_grid(["hotspot"]), config)

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError, match="at least one point"):
            SweepRunner([], FAST)

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValueError, match="chunksize"):
            SweepRunner(expand_grid(["hotspot"]), FAST, chunksize=0)


class TestRunnerProcesses:
    def test_multiprocess_sweep_with_injected_failure(self):
        """One diverging point is reported, not fatal, across processes."""
        result = run_sweep(
            ["hotspot", "__boom__", "bfs"],
            axes={"circuit_substeps": [1]},
            base_config=FAST,
            max_workers=2,
        )
        assert [r.ok for r in result.points] == [True, False, True]
        assert "KeyError" in result.points[1].error

    def test_results_in_grid_order(self):
        result = run_sweep(
            ["hotspot", "bfs"], base_config=FAST, max_workers=2, chunksize=1
        )
        assert [r.point.benchmark for r in result.points] == ["hotspot", "bfs"]


class TestJsonWriter:
    def test_round_trip(self, tmp_path):
        result = run_sweep(
            ["hotspot", "__bad__"], base_config=FAST, max_workers=1
        )
        path = result.write_json(tmp_path / "out" / "sweep.json")
        data = json.loads(path.read_text())
        assert data["num_points"] == 2
        assert data["num_failed"] == 1
        assert data["base_config"]["cycles"] == FAST.cycles
        good = data["points"][0]
        assert good["ok"] is True
        assert isinstance(good["metrics"]["min_voltage_v"], float)
        bad = data["points"][1]
        assert bad["ok"] is False and "unknown benchmark" in bad["error"]

    def test_numpy_metrics_round_trip(self, tmp_path):
        """Regression: point metrics carrying NumPy scalars *and arrays*
        must survive the JSON writer (the old coercion handled only
        scalar ``.item()``, so an ``np.ndarray`` metric crashed
        ``json.dump``)."""
        point = SweepPoint(index=0, benchmark="hotspot")
        result = SweepResult(
            points=[
                SweepPointResult(
                    point=point,
                    ok=True,
                    metrics={
                        "f64": np.float64(1.5),
                        "i64": np.int64(7),
                        "arr": np.array([0.25, 0.5], dtype=np.float32),
                    },
                )
            ],
            base_config=FAST,
        )
        path = result.write_json(tmp_path / "np.json")
        metrics = json.loads(path.read_text())["points"][0]["metrics"]
        assert metrics == {"f64": 1.5, "i64": 7, "arr": [0.25, 0.5]}
        assert isinstance(metrics["i64"], int)


class TestSweepTelemetry:
    def test_per_point_events_and_utilization(self):
        from repro.telemetry import Telemetry

        tele = Telemetry(run_id="sweep-test")
        result = run_sweep(
            ["hotspot", "__bad__"], base_config=FAST, max_workers=1,
            telemetry=tele,
        )
        assert result.num_failed == 1
        assert tele.counters["points_ok"] == 1
        assert tele.counters["points_failed"] == 1
        kinds = [e["kind"] for e in tele.events]
        assert kinds[0] == "sweep_start"
        assert kinds.count("sweep_point") == 2
        assert kinds[-1] == "sweep_done"
        failed = [e for e in tele.events
                  if e["kind"] == "sweep_point" and not e["ok"]]
        assert "unknown benchmark" in failed[0]["error"]
        assert 0.0 < tele.metrics["worker_utilization"] <= 1.5
        assert tele.metrics["num_points"] == 2
        assert "sweep" in tele.timings

    def test_disabled_recorder_is_inert(self):
        from repro.telemetry import Telemetry

        tele = Telemetry(enabled=False)
        run_sweep(["hotspot"], base_config=FAST, max_workers=1,
                  telemetry=tele)
        assert tele.events == []
        assert tele.counters == {}
