"""Tests for the DFS / PG collaborative power-management drivers."""

import numpy as np
import pytest

from repro.sim.power_experiments import (
    PowerManagementResult,
    run_baseline,
    run_dfs_experiment,
    run_pg_experiment,
)

CYCLES_DFS = 2 * 4096
CYCLES_PG = 3000


@pytest.fixture(scope="module")
def baseline():
    return run_baseline("hotspot", stacked=False, cycles=3000)


class TestResultContainer:
    def test_energy_accounting(self, baseline):
        assert baseline.chip_energy_j > 0
        assert baseline.input_energy_j() > baseline.chip_energy_j
        assert baseline.energy_per_instruction_j() > 0

    def test_stacked_pde_above_conventional(self):
        conventional = run_baseline("hotspot", stacked=False, cycles=2000)
        stacked = run_baseline("hotspot", stacked=True, cycles=2000)
        assert stacked.pde() > conventional.pde()

    def test_no_work_rejected(self):
        r = PowerManagementResult(
            "x", False, np.ones((10, 16)), instructions=0, cycles=10
        )
        with pytest.raises(ValueError):
            r.energy_per_instruction_j()


class TestDFS:
    def test_lower_target_lower_power(self):
        high = run_dfs_experiment(
            "hotspot", performance_target=0.9, stacked=False,
            cycles=CYCLES_DFS,
        )
        low = run_dfs_experiment(
            "hotspot", performance_target=0.2, stacked=False,
            cycles=CYCLES_DFS,
        )
        assert low.mean_power_w < high.mean_power_w

    def test_lower_target_fewer_instructions(self):
        high = run_dfs_experiment(
            "hotspot", performance_target=0.9, stacked=False,
            cycles=CYCLES_DFS,
        )
        low = run_dfs_experiment(
            "hotspot", performance_target=0.2, stacked=False,
            cycles=CYCLES_DFS,
        )
        assert low.instructions < high.instructions

    def test_stacked_variant_runs_hypervisor(self):
        run = run_dfs_experiment(
            "hotspot", performance_target=0.5, stacked=True,
            cycles=CYCLES_DFS,
        )
        assert run.stacked
        assert run.frequency_overrides >= 0

    def test_stacked_beats_conventional_energy(self):
        conventional = run_dfs_experiment(
            "hotspot", performance_target=0.5, stacked=False,
            cycles=CYCLES_DFS,
        )
        stacked = run_dfs_experiment(
            "hotspot", performance_target=0.5, stacked=True,
            cycles=CYCLES_DFS,
        )
        assert (
            stacked.energy_per_instruction_j()
            < conventional.energy_per_instruction_j()
        )


class TestPG:
    def test_gating_reduces_power(self):
        baseline = run_baseline("blackscholes", stacked=False, cycles=CYCLES_PG)
        gated = run_pg_experiment("blackscholes", stacked=False, cycles=CYCLES_PG)
        # Gating the idle LSU/SFU shaves leakage power.
        assert gated.mean_power_w < baseline.mean_power_w

    def test_hypervisor_only_on_stacked(self):
        conventional = run_pg_experiment("hotspot", stacked=False, cycles=CYCLES_PG)
        assert conventional.gating_vetoes == 0

    def test_stacked_beats_conventional_energy(self):
        conventional = run_pg_experiment(
            "heartwall", stacked=False, cycles=CYCLES_PG
        )
        stacked = run_pg_experiment(
            "heartwall", stacked=True, cycles=CYCLES_PG
        )
        assert (
            stacked.energy_per_instruction_j()
            < conventional.energy_per_instruction_j()
        )
