"""Tests for the config-hash result store (repro.sim.store).

The store's contract: a key hit serves metrics bit-identical to the
original simulation, any corruption degrades to a miss (never a crash),
and keys distinguish every config field — run length and seed included —
so a screening-round result can never masquerade as a full-length one.
"""

import json

from repro.sim.cosim import CosimConfig
from repro.sim.store import ResultStore, point_key
from repro.sim.sweep import SweepPointResult, SweepRunner, expand_grid

FAST = CosimConfig(cycles=40, warmup_cycles=10)


def one_point(seed=1):
    return expand_grid(["hotspot"], {"seed": [seed]})[0]


def ok_result(point, metrics=None):
    return SweepPointResult(
        point=point, ok=True,
        metrics=metrics or {"pde": 0.9, "min_voltage_v": 0.82},
        elapsed_s=0.5,
    )


class TestPointKey:
    def test_key_is_hash_plus_benchmark(self):
        key = point_key(one_point(), FAST)
        digest, _, benchmark = key.partition(":")
        assert benchmark == "hotspot"
        assert len(digest) > 8

    def test_same_config_same_key(self):
        assert point_key(one_point(), FAST) == point_key(one_point(), FAST)

    def test_key_distinguishes_run_length(self):
        longer = CosimConfig(cycles=400, warmup_cycles=10)
        assert point_key(one_point(), FAST) != point_key(one_point(), longer)

    def test_key_distinguishes_seed_and_benchmark(self):
        assert point_key(one_point(1), FAST) != point_key(one_point(2), FAST)
        bfs = expand_grid(["bfs"], {"seed": [1]})[0]
        assert point_key(one_point(1), FAST) != point_key(bfs, FAST)


class TestHitMiss:
    def test_miss_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.serve("nope:hotspot", one_point()) is None
        assert store.stats()["misses"] == 1
        assert store.stats()["hit_rate"] == 0.0

    def test_put_then_serve_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        point = one_point()
        key = point_key(point, FAST)
        assert store.put(key, ok_result(point))
        served = store.serve(key, point)
        assert served is not None
        assert served.ok
        assert served.cached
        assert served.point is point
        assert store.stats()["hits"] == 1

    def test_failures_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        point = one_point()
        failed = SweepPointResult(point=point, ok=False, error="boom")
        assert not store.put(point_key(point, FAST), failed)
        assert len(store) == 0
        assert not (tmp_path / "store.jsonl").exists()

    def test_duplicate_put_is_a_no_op(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        point = one_point()
        key = point_key(point, FAST)
        assert store.put(key, ok_result(point))
        assert not store.put(key, ok_result(point, metrics={"pde": 0.1}))
        assert len(path.read_text().splitlines()) == 1
        assert store.serve(key, point).metrics["pde"] == 0.9


class TestPersistence:
    def test_cross_instance_reuse(self, tmp_path):
        """A fresh process (new ResultStore) sees the prior run's entries."""
        path = tmp_path / "store.jsonl"
        point = one_point()
        key = point_key(point, FAST)
        ResultStore(path).put(key, ok_result(point))

        reopened = ResultStore(path)
        assert key in reopened
        served = reopened.serve(key, point)
        assert served.cached
        assert served.metrics == {"pde": 0.9, "min_voltage_v": 0.82}

    def test_served_metrics_bit_identical_to_fresh_simulation(self, tmp_path):
        """Cache round-trip must not perturb a single metric bit."""
        path = tmp_path / "store.jsonl"
        point = one_point()
        fresh = SweepRunner([point], FAST, max_workers=1).run().points[0]
        assert fresh.ok
        store = ResultStore(path)
        key = point_key(point, FAST)
        store.put(key, fresh)

        served = ResultStore(path).serve(key, point)
        assert served.metrics == fresh.metrics
        # Float equality above is exact; belt-and-braces on the repr too.
        assert json.dumps(served.metrics, sort_keys=True) == json.dumps(
            fresh.metrics, sort_keys=True
        )

    def test_last_writer_wins_on_duplicate_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        point = one_point()
        key = point_key(point, FAST)
        first = json.dumps(
            {"key": key, "record": ok_result(point).to_record()}
        )
        second = json.dumps(
            {"key": key, "record": ok_result(point, {"pde": 0.5}).to_record()}
        )
        path.write_text(first + "\n" + second + "\n")
        assert ResultStore(path).serve(key, point).metrics == {"pde": 0.5}


class TestCorruptionTolerance:
    def _good_line(self, point):
        return json.dumps(
            {"key": point_key(point, FAST), "record": ok_result(point).to_record()}
        )

    def test_truncated_tail_is_a_miss_not_a_crash(self, tmp_path):
        """A writer killed mid-append leaves a torn last line."""
        path = tmp_path / "store.jsonl"
        good = self._good_line(one_point(1))
        torn = self._good_line(one_point(2))[:25]
        path.write_text(good + "\n" + torn)

        store = ResultStore(path)
        assert store.corrupt_lines == 1
        assert store.serve(point_key(one_point(1), FAST), one_point(1)) is not None
        assert store.serve(point_key(one_point(2), FAST), one_point(2)) is None

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps(["wrong", "shape"]) + "\n"
            + json.dumps({"key": 42, "record": {}}) + "\n"
            + json.dumps({"key": "k", "record": "not a dict"}) + "\n"
            + self._good_line(one_point()) + "\n"
            + "\n"  # blank lines are fine, not corruption
        )
        store = ResultStore(path)
        assert store.corrupt_lines == 4
        assert len(store) == 1
        assert store.stats()["corrupt_lines"] == 4

    def test_record_that_cannot_rebuild_is_corrupt(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            json.dumps({"key": "k:hotspot", "record": {"ok": True}}) + "\n"
        )
        store = ResultStore(path)
        assert store.corrupt_lines == 1
        assert "k:hotspot" not in store

    def test_appends_still_work_after_tolerated_corruption(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("garbage\n")
        store = ResultStore(path)
        point = one_point()
        assert store.put(point_key(point, FAST), ok_result(point))
        reopened = ResultStore(path)
        assert reopened.corrupt_lines == 1
        assert len(reopened) == 1


class TestTornTailSelfHealing:
    def _good_line(self, point):
        return json.dumps(
            {"key": point_key(point, FAST), "record": ok_result(point).to_record()}
        )

    def test_append_after_torn_tail_terminates_the_fragment(self, tmp_path):
        """A torn tail costs one entry, not every append after it.

        Without healing, the next append concatenates onto the
        newline-less fragment and both lines die; ``put`` must detect
        the torn tail and terminate it first.
        """
        path = tmp_path / "store.jsonl"
        torn = self._good_line(one_point(1))[:30]
        path.write_text(torn)  # no trailing newline: writer died here

        store = ResultStore(path)
        point = one_point(2)
        assert store.put(point_key(point, FAST), ok_result(point))

        reloaded = ResultStore(path)
        assert reloaded.corrupt_lines == 1
        assert reloaded.serve(point_key(point, FAST), point) is not None

    def test_chaos_torn_write_reports_failure_and_heals(self, tmp_path, chaos_plan):
        from repro.faults.chaos import ChaosEvent, ChaosPlan

        path = tmp_path / "store.jsonl"
        chaos_plan(ChaosPlan("torn", [
            ChaosEvent("store_append", "torn_write", at=0)
        ]))
        store = ResultStore(path)
        first, second = one_point(1), one_point(2)
        assert store.put(point_key(first, FAST), ok_result(first)) is False
        # The record is still served from memory in this process...
        assert store.serve(point_key(first, FAST), first) is not None
        # ...and the next append self-heals past the torn bytes.
        assert store.put(point_key(second, FAST), ok_result(second)) is True
        reloaded = ResultStore(path)
        assert reloaded.corrupt_lines == 1
        assert reloaded.serve(point_key(first, FAST), first) is None
        assert reloaded.serve(point_key(second, FAST), second) is not None

    def test_chaos_disk_full_is_a_soft_failure(self, tmp_path, chaos_plan):
        from repro.faults.chaos import ChaosEvent, ChaosPlan

        path = tmp_path / "store.jsonl"
        chaos_plan(ChaosPlan("enospc", [
            ChaosEvent("store_append", "disk_full", at=0)
        ]))
        store = ResultStore(path)
        point = one_point(1)
        assert store.put(point_key(point, FAST), ok_result(point)) is False
        assert store.put(point_key(one_point(2), FAST), ok_result(one_point(2)))


# Two writer processes appending to one store: the advisory flock must
# keep their lines from interleaving.  Each child appends its own keys
# with flush+fsync per line, racing the other.
_WRITER = """\
import sys
from repro.sim.cosim import CosimConfig
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepPointResult, expand_grid

path, tag = sys.argv[1], sys.argv[2]
point = expand_grid(["hotspot"])[0]
store = ResultStore(path)
for i in range(25):
    result = SweepPointResult(
        point=point, ok=True, metrics={"i": i, "tag": tag}
    )
    assert store.put(f"{tag}:{i}:hotspot", result)
"""


class TestConcurrentWriters:
    def test_two_processes_append_without_interleaving(self, tmp_path):
        import os
        import subprocess
        import sys as sys_mod
        from pathlib import Path

        import repro

        path = tmp_path / "store.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        writers = [
            subprocess.Popen(
                [sys_mod.executable, "-c", _WRITER, str(path), tag],
                env=env, stderr=subprocess.PIPE,
            )
            for tag in ("alpha", "beta")
        ]
        for proc in writers:
            proc.wait(timeout=120)
            assert proc.returncode == 0, proc.stderr.read().decode()[-2000:]

        store = ResultStore(path)
        assert store.corrupt_lines == 0
        assert len(store) == 50
        for tag in ("alpha", "beta"):
            for i in range(25):
                record = store.get(f"{tag}:{i}:hotspot")
                assert record is not None
                assert record["metrics"] == {"i": i, "tag": tag}
