"""Live-plane integration: sweeps and explorations publish while running."""

import pytest

from repro.sim.cosim import CosimConfig
from repro.sim.explore import run_exploration
from repro.sim.sweep import SweepRunner, expand_grid
from repro.telemetry import Telemetry
from repro.telemetry.live import LiveRun, read_heartbeats, read_status

BASE = CosimConfig(cycles=60, warmup_cycles=10)


def small_grid():
    return expand_grid(
        ["hotspot", "bfs"], {"cr_ivr_area_mm2": [105.8]}, base_seed=7
    )


def run_live(tmp_path, points=None, **runner_kwargs):
    live = LiveRun(tmp_path, interval_s=0.0)
    result = SweepRunner(
        points if points is not None else small_grid(), BASE, **runner_kwargs
    ).run(live=live)
    live.close()
    return result, read_status(tmp_path), read_heartbeats(tmp_path)


class TestSweepLive:
    def test_inline_counts_and_heartbeat(self, tmp_path):
        result, status, beats = run_live(tmp_path, max_workers=1)
        assert status["command"] == "sweep"
        assert status["counters"]["sweep_points_done"] == 2
        assert status["counters"]["sweep_points_failed"] == 0
        assert status["gauges"]["sweep_points_total"] == 2
        hist = status["histograms"]["sweep_point_elapsed_s"]
        assert hist["count"] == 2
        # Inline execution is one in-process worker.
        assert len(beats) == 1
        assert beats[0]["points_done"] == 2
        assert beats[0]["lane_cycles"] == 2 * (BASE.cycles + BASE.warmup_cycles)
        assert beats[0]["current"] == []  # finished, nothing in flight

    def test_pool_workers_heartbeat(self, tmp_path):
        result, status, beats = run_live(tmp_path, max_workers=2)
        assert status["counters"]["sweep_points_done"] == 2
        assert sum(b["points_done"] for b in beats) == 2
        assert all(b["worker"].startswith("pid-") for b in beats)

    def test_killable_path_uses_stable_slot_ids(self, tmp_path):
        result, status, beats = run_live(
            tmp_path, max_workers=2, point_timeout_s=60.0
        )
        assert status["counters"]["sweep_points_done"] == 2
        # Process-per-task, but heartbeat files are per concurrent slot
        # (accumulated across the short-lived processes), not per pid.
        assert all(b["worker"].startswith("slot-") for b in beats)
        assert sum(b["points_done"] for b in beats) == 2

    def test_batch_tasks_report_lane_cycles(self, tmp_path):
        result, status, beats = run_live(tmp_path, max_workers=1, batch_size=4)
        assert status["counters"]["sweep_points_done"] == 2
        assert sum(b["lane_cycles"] for b in beats) == 2 * (
            BASE.cycles + BASE.warmup_cycles
        )

    def test_failures_and_retries_counted(self, tmp_path):
        points = expand_grid(["hotspot", "no-such-bench"], base_seed=7)
        result, status, beats = run_live(tmp_path, points=points, max_workers=1)
        assert status["counters"]["sweep_points_done"] == 1
        assert status["counters"]["sweep_points_failed"] == 1
        assert sum(b["points_failed"] for b in beats) == 1

    def test_live_none_is_the_default_no_files(self, tmp_path):
        SweepRunner(small_grid(), BASE, max_workers=1).run()
        assert read_status(tmp_path) is None
        assert read_heartbeats(tmp_path) == []

    def test_eta_gauge_converges_to_zero(self, tmp_path):
        _, status, _ = run_live(tmp_path, max_workers=1)
        assert status["gauges"]["sweep_eta_s"] == pytest.approx(0.0)


class TestExploreLive:
    def test_rounds_and_cache_metrics_published(self, tmp_path):
        live = LiveRun(tmp_path, interval_s=0.0)
        result = run_exploration(
            ["hotspot"],
            {"cr_ivr_area_mm2": [52.9, 105.8, 211.6]},
            base_config=CosimConfig(cycles=80, warmup_cycles=16),
            store_path=tmp_path / "store.jsonl",
            rounds=2,
            max_workers=1,
            live=live,
        )
        live.close()
        status = read_status(tmp_path)
        assert status["command"] == "explore"
        gauges = status["gauges"]
        assert gauges["explore_round"] == 2
        assert gauges["explore_rounds_total"] == 2
        assert gauges["explore_frontier_size"] == len(result.front)
        counters = status["counters"]
        assert counters["explore_points_simulated"] == result.num_simulated
        assert counters["explore_points_served"] == result.num_served
        # The rounds' sweeps heartbeat into the same directory.
        assert read_heartbeats(tmp_path)

    def test_cache_hit_rate_rises_on_rerun(self, tmp_path):
        config = CosimConfig(cycles=80, warmup_cycles=16)
        kwargs = dict(
            axes={"cr_ivr_area_mm2": [52.9, 105.8]},
            base_config=config,
            store_path=tmp_path / "store.jsonl",
            rounds=1,
            max_workers=1,
        )
        run_exploration(["hotspot"], **kwargs)
        live = LiveRun(tmp_path, interval_s=0.0)
        run_exploration(["hotspot"], live=live, **kwargs)
        live.close()
        status = read_status(tmp_path)
        assert status["gauges"]["explore_cache_hit_rate"] == pytest.approx(1.0)
        assert status["counters"]["explore_points_simulated"] == 0
