"""End-to-end chaos recovery: the sweep runtime survives its faults.

These are the invariants the chaos harness exists to assert, driven
through the real :class:`SweepRunner`:

* a sweep worker SIGKILLed mid-point is a structured, retryable
  failure — the retry succeeds (fire-once tokens spare it) and the
  sweep completes with the same metrics an undisturbed run produces;
* a sweep process SIGKILLed *mid-checkpoint-write* leaves the previous
  checkpoint intact (atomic replace), and resuming from it recovers
  every completed point and finishes identically;
* torn/disk-full checkpoint writes are counted, never fatal.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import chaos
from repro.faults.chaos import ChaosEvent, ChaosPlan
from repro.sim.cosim import CosimConfig
from repro.sim.sweep import SweepRunner, expand_grid

FAST = CosimConfig(cycles=30, warmup_cycles=10)


def grid():
    return expand_grid(["hotspot", "bfs"], {"cr_ivr_area_mm2": [52.9, 105.8]})


def run_reference():
    return SweepRunner(grid(), FAST, max_workers=1).run()


class TestWorkerKill:
    def test_killed_worker_is_retried_to_success(self, tmp_path, monkeypatch):
        # The plan must live on disk: pool workers are separate
        # processes and need the shared fire-once token_dir, and the
        # kill must only ever land in a worker (max_workers >= 2 keeps
        # the point payload out of the parent pytest process).  The
        # REPRO_CHAOS env var is the documented propagation path into
        # workers regardless of the multiprocessing start method.
        path = ChaosPlan("worker-kill", [
            ChaosEvent("worker_point", "kill", at=0)
        ]).save(tmp_path / "plan.json")
        monkeypatch.setenv(chaos.CHAOS_ENV, str(path))
        chaos.deactivate()  # force fresh env resolution
        try:
            result = SweepRunner(
                grid(), FAST, max_workers=2, max_attempts=3
            ).run()
        finally:
            chaos.deactivate()
        assert result.num_failed == 0
        # The whole broken wave is retried, so several points may carry
        # attempts > 1; all stay within budget.
        assert any(r.attempts > 1 for r in result.points)
        assert all(r.attempts <= 3 for r in result.points)
        reference = run_reference()
        assert [r.metrics for r in result.points] == [
            r.metrics for r in reference.points
        ]

    def test_kill_without_retry_budget_is_structured(
        self, tmp_path, monkeypatch
    ):
        path = ChaosPlan("worker-kill-once", [
            ChaosEvent("worker_point", "kill", at=0)
        ]).save(tmp_path / "plan.json")
        monkeypatch.setenv(chaos.CHAOS_ENV, str(path))
        chaos.deactivate()
        try:
            result = SweepRunner(
                grid(), FAST, max_workers=2, max_attempts=1
            ).run()
        finally:
            chaos.deactivate()
        assert result.num_failed >= 1
        for failure in result.failures():
            assert failure.error_type in ("WorkerCrash", "BrokenProcessPool")


# The checkpoint-kill child must be a real subprocess: the SIGKILL
# lands mid-checkpoint-write in the sweep's parent process, which here
# must not be pytest.  The child inherits the plan via REPRO_CHAOS.
_CHILD = """\
import sys
from repro.sim.cosim import CosimConfig
from repro.sim.sweep import SweepRunner, expand_grid

points = expand_grid(
    ["hotspot", "bfs"], {"cr_ivr_area_mm2": [52.9, 105.8]}
)
base = CosimConfig(cycles=30, warmup_cycles=10)
SweepRunner(
    points, base, max_workers=1,
    checkpoint_path=sys.argv[1], checkpoint_every=1,
).run()
"""


class TestCheckpointKillResume:
    def test_kill_mid_checkpoint_write_then_resume(self, tmp_path):
        checkpoint = tmp_path / "checkpoint.json"
        plan_path = ChaosPlan("ckpt-kill", [
            ChaosEvent("checkpoint_write", "kill", at=2)
        ]).save(tmp_path / "plan.json")
        import repro

        env = dict(os.environ)
        env[chaos.CHAOS_ENV] = str(plan_path)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, str(checkpoint)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == -9, proc.stderr[-2000:]
        # The torn write hit the temp file only: the real checkpoint is
        # the previous (valid) one, holding the two points completed
        # before the third write was sabotaged.
        with open(checkpoint) as handle:
            data = json.load(handle)
        recovered = data["completed"]
        assert len(recovered) == 2
        assert all(record["ok"] for record in recovered)

        resumed = SweepRunner.resume(
            checkpoint, grid(), FAST, max_workers=1
        ).run()
        assert resumed.num_failed == 0
        reference = run_reference()
        assert [r.metrics for r in resumed.points] == [
            r.metrics for r in reference.points
        ]


class TestCheckpointWriteFailures:
    def test_torn_checkpoint_write_is_counted_not_fatal(
        self, tmp_path, chaos_plan
    ):
        chaos_plan(ChaosPlan("ckpt-torn", [
            ChaosEvent("checkpoint_write", "torn_write", at=1)
        ]))
        runner = SweepRunner(
            grid(), FAST, max_workers=1,
            checkpoint_path=tmp_path / "checkpoint.json", checkpoint_every=1,
        )
        result = runner.run()
        assert result.num_failed == 0
        assert runner.checkpoint_write_errors == 1
        # The final (forced) checkpoint succeeded, so the file holds
        # every point despite the mid-run torn write.
        with open(tmp_path / "checkpoint.json") as handle:
            assert len(json.load(handle)["completed"]) == len(grid())

    def test_disk_full_checkpoint_write_is_counted_not_fatal(
        self, tmp_path, chaos_plan
    ):
        # Every scheduled write fails with ENOSPC; the sweep still
        # completes and the one un-sabotaged write (the final forced
        # one) leaves a complete checkpoint behind.
        writes = len(grid())  # per-point writes; +1 final force
        chaos_plan(ChaosPlan("ckpt-enospc", [
            ChaosEvent("checkpoint_write", "disk_full", at=i)
            for i in range(writes)
        ]))
        runner = SweepRunner(
            grid(), FAST, max_workers=1,
            checkpoint_path=tmp_path / "checkpoint.json", checkpoint_every=1,
        )
        result = runner.run()
        assert result.num_failed == 0
        assert runner.checkpoint_write_errors == writes
        with open(tmp_path / "checkpoint.json") as handle:
            assert len(json.load(handle)["completed"]) == len(grid())
