"""Tests for the design-space exploration service (repro.sim.explore).

The acceptance contract from the issue is pinned end to end on a
reference grid: successive halving must recover the *identical* Pareto
frontier an exhaustive full-length sweep finds, while running at most
half the grid at full length; and a repeat exploration against the same
store must simulate nothing at all.
"""

import json

import pytest

from repro.analysis.pareto import DEFAULT_OBJECTIVES, pareto_front
from repro.sim.cosim import CosimConfig
from repro.sim.explore import (
    DEFAULT_GUARDBAND_V,
    ExploreRound,
    _objective_row,
    _promote,
    round_schedule,
    run_exploration,
)
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepPoint, SweepPointResult, run_sweep
from repro.telemetry import Telemetry

# Reference grid: the warmup-cycle knob is run-length stable (its
# ranking at 120 screening cycles matches 300 full cycles for both
# benchmarks and areas), so halving provably converges to the
# exhaustive frontier while full-length-simulating only the survivors.
BENCHMARKS = ["hotspot", "bfs"]
AXES = {
    "cr_ivr_area_mm2": [52.9, 211.6],
    "warmup_cycles": [60, 0],
    "seed": [42],
}
BASE = CosimConfig(cycles=300, warmup_cycles=60)
SCREEN_CYCLES = 120

# A small config for behavioral tests that exercise accounting, not
# frontier recovery.
FAST = CosimConfig(cycles=40, warmup_cycles=10)


def benchmark_front(rows, objectives=DEFAULT_OBJECTIVES):
    """Per-benchmark frontier union, exactly as the service defines it."""
    front = []
    for benchmark in sorted({str(r["benchmark"]) for r in rows}):
        front.extend(
            pareto_front(
                [r for r in rows if r["benchmark"] == benchmark], objectives
            )
        )
    return front


class TestRoundSchedule:
    def test_single_round_is_full_length_only(self):
        assert round_schedule(1000, 250, 1) == [1000]

    def test_two_rounds(self):
        assert round_schedule(300, 120, 2) == [120, 300]

    def test_geometric_interpolation_ends_exactly_at_full(self):
        schedule = round_schedule(1000, 100, 3)
        assert schedule[0] == 100
        assert schedule[-1] == 1000
        assert schedule == sorted(schedule)
        assert 100 < schedule[1] < 1000

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="rounds"):
            round_schedule(1000, 100, 0)
        with pytest.raises(ValueError, match="screen_cycles"):
            round_schedule(1000, 1000, 2)
        with pytest.raises(ValueError, match="screen_cycles"):
            round_schedule(1000, 0, 2)


class TestObjectiveRow:
    def _result(self, min_v):
        point = SweepPoint(
            index=0, benchmark="bfs",
            overrides=(("cr_ivr_area_mm2", 52.9),), seed=7,
        )
        return SweepPointResult(
            point=point, ok=True,
            metrics={
                "pde": 0.9, "min_voltage_v": min_v, "throughput_ipc": 100.0
            },
        )

    def test_violation_depth_below_guardband(self):
        row = _objective_row(self._result(0.76), BASE, DEFAULT_GUARDBAND_V)
        assert row["guardband_violation_v"] == pytest.approx(0.04)
        assert row["cr_ivr_area_mm2"] == 52.9

    def test_compliant_run_has_zero_violation(self):
        row = _objective_row(self._result(0.85), BASE, DEFAULT_GUARDBAND_V)
        assert row["guardband_violation_v"] == 0.0

    def test_rows_carry_no_provenance_fields(self):
        """cached/elapsed_s must not leak into the artifact rows, or a
        cached re-run would emit a different pareto.json."""
        row = _objective_row(self._result(0.85), BASE, DEFAULT_GUARDBAND_V)
        assert "cached" not in row
        assert "elapsed_s" not in row


class TestPromote:
    def _row(self, index, area, pde, benchmark="bfs"):
        return {
            "benchmark": benchmark, "index": index,
            "cr_ivr_area_mm2": area, "pde": pde,
            "guardband_violation_v": 0.0,
        }

    def test_keeps_quota_by_rank(self):
        rows = [
            self._row(0, 50, 0.95),   # frontier
            self._row(1, 60, 0.90),   # rank 1
            self._row(2, 70, 0.85),   # rank 2
            self._row(3, 80, 0.80),   # rank 3
        ]
        assert _promote(rows, eta=2, objectives=DEFAULT_OBJECTIVES) == [0, 1]

    def test_frontier_is_never_cut(self):
        # Three mutually non-dominated points, quota of 2: all survive.
        rows = [
            self._row(0, 50, 0.90),
            self._row(1, 100, 0.93),
            self._row(2, 200, 0.95),
            self._row(3, 210, 0.80),
        ]
        survivors = _promote(rows, eta=2, objectives=DEFAULT_OBJECTIVES)
        assert survivors == [0, 1, 2]

    def test_promotion_is_per_benchmark(self):
        rows = [
            self._row(0, 50, 0.95, "bfs"),
            self._row(1, 60, 0.90, "bfs"),
            self._row(2, 50, 0.10, "hotspot"),  # weak, but its own race
            self._row(3, 60, 0.05, "hotspot"),
        ]
        survivors = _promote(rows, eta=2, objectives=DEFAULT_OBJECTIVES)
        assert survivors == [0, 2]


@pytest.fixture(scope="module")
def reference_exploration(tmp_path_factory):
    """The reference grid explored twice against one store, plus the
    exhaustive sweep of the same grid."""
    scratch = tmp_path_factory.mktemp("explore")
    store = scratch / "store.jsonl"
    kwargs = dict(
        axes=AXES, base_config=BASE, store_path=store,
        rounds=2, eta=2, screen_cycles=SCREEN_CYCLES, max_workers=1,
    )
    first = run_exploration(BENCHMARKS, **kwargs)
    second = run_exploration(BENCHMARKS, **kwargs)
    exhaustive = run_sweep(
        BENCHMARKS, AXES, base_config=BASE, max_workers=1
    )
    return first, second, exhaustive, scratch


class TestAcceptance:
    """The issue's acceptance criteria on the reference grid."""

    def test_recovers_the_exhaustive_pareto_front(self, reference_exploration):
        first, _, exhaustive, _ = reference_exploration
        rows = [
            _objective_row(r, BASE, DEFAULT_GUARDBAND_V)
            for r in exhaustive.points
            if r.ok
        ]
        assert len(rows) == len(exhaustive.points)  # nothing failed
        assert first.front == benchmark_front(rows)
        assert first.front  # non-trivial frontier

    def test_simulates_at_most_half_the_grid_at_full_length(
        self, reference_exploration
    ):
        first, _, exhaustive, _ = reference_exploration
        grid_size = len(exhaustive.points)
        final = first.rounds[-1]
        assert final.cycles == BASE.cycles
        assert final.simulated + final.served_from_cache <= grid_size // 2

    def test_screening_runs_the_whole_grid_short(self, reference_exploration):
        first, _, exhaustive, _ = reference_exploration
        screening = first.rounds[0]
        assert screening.cycles == SCREEN_CYCLES
        assert screening.candidates == len(exhaustive.points)
        assert screening.simulated == len(exhaustive.points)

    def test_rerun_simulates_nothing(self, reference_exploration):
        _, second, _, _ = reference_exploration
        assert second.num_simulated == 0
        assert second.num_served > 0
        assert all(r.cache_hit_rate == 1.0 for r in second.rounds)

    def test_rerun_front_and_artifact_are_identical(
        self, reference_exploration
    ):
        first, second, _, scratch = reference_exploration
        assert second.front == first.front
        assert second.evaluated == first.evaluated
        a = first.write_json(scratch / "pareto_a.json").read_bytes()
        b = second.write_json(scratch / "pareto_b.json").read_bytes()
        # Normalize run-local accounting; everything else must match
        # byte for byte (the artifact is deterministic by construction).
        da, db = json.loads(a), json.loads(b)
        for doc in (da, db):
            doc.pop("elapsed_s")
            doc.pop("rounds")
            doc.pop("cache")
            doc["points_simulated"] = None
            doc["points_served_from_cache"] = None
        assert json.dumps(da, sort_keys=True) == json.dumps(db, sort_keys=True)

    def test_artifact_schema(self, reference_exploration):
        first, _, _, _ = reference_exploration
        doc = first.to_dict()
        assert doc["artifact"] == "pareto"
        assert doc["config_hash"]
        assert doc["guardband_v"] == DEFAULT_GUARDBAND_V
        assert [o["name"] for o in doc["objectives"]] == [
            "cr_ivr_area_mm2", "pde", "guardband_violation_v"
        ]
        assert doc["front_size"] == len(doc["front"])
        assert len(doc["rounds"]) == 2
        for row in doc["front"]:
            assert set(row) >= {
                "benchmark", "index", "overrides", "seed",
                "cr_ivr_area_mm2", "pde", "min_voltage_v",
                "guardband_violation_v", "throughput_ipc",
            }

    def test_render_reports_accounting(self, reference_exploration):
        first, second, _, _ = reference_exploration
        text = second.render()
        assert "Pareto frontier" in text
        assert "100% hit rate" in text
        assert "0 simulated" in text


class TestBehavior:
    def test_validation_errors(self, tmp_path):
        with pytest.raises(ValueError, match="eta"):
            run_exploration(
                ["hotspot"], {"seed": [1]}, FAST,
                store_path=tmp_path / "s.jsonl", eta=1,
            )
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_exploration(
                ["hotspot"], {"seed": [1]}, FAST,
                store_path=tmp_path / "s.jsonl",
                checkpoint_path=tmp_path / "ckpt.json",
            )

    def test_all_points_failing_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="eliminated every candidate"):
            run_exploration(
                ["__no_such_benchmark__"], {"seed": [1, 2]}, FAST,
                store_path=tmp_path / "s.jsonl",
                rounds=2, screen_cycles=10, max_workers=1,
            )

    def test_shards_dedup_through_a_shared_store(self, tmp_path):
        """Two explorations over overlapping slices share one store: the
        second shard re-simulates none of the overlap."""
        store = tmp_path / "store.jsonl"
        kwargs = dict(
            axes={"seed": [1, 2]}, base_config=FAST, store_path=store,
            rounds=2, screen_cycles=10, max_workers=1,
        )
        shard1 = run_exploration(["hotspot"], **kwargs)
        assert shard1.num_served == 0
        shard2 = run_exploration(["hotspot", "bfs"], **kwargs)
        # Every hotspot evaluation in shard 2 came from shard 1's work.
        served = shard2.num_served
        assert served == shard1.num_simulated
        assert shard2.num_simulated == shard1.num_simulated  # the bfs half

    def test_failed_points_are_not_cached_and_rerun(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        with pytest.raises(RuntimeError):
            run_exploration(
                ["__no_such_benchmark__"], {"seed": [1]}, FAST,
                store_path=store_path, rounds=2, screen_cycles=10,
                max_workers=1,
            )
        assert len(ResultStore(store_path)) == 0

    def test_telemetry_records_rounds_and_cache_rates(self, tmp_path):
        tele = Telemetry(run_id="explore-test")
        result = run_exploration(
            ["hotspot"], {"seed": [1, 2]}, FAST,
            store_path=tmp_path / "s.jsonl",
            rounds=2, screen_cycles=10, max_workers=1, telemetry=tele,
        )
        kinds = [e["kind"] for e in tele.events]
        assert "explore_start" in kinds
        assert kinds.count("explore_round_start") == 2
        assert kinds.count("explore_round_done") == 2
        assert "explore_done" in kinds
        done = [e for e in tele.events if e["kind"] == "explore_round_done"]
        assert all("cache_hit_rate" in e for e in done)
        assert tele.metrics["points_simulated"] == result.num_simulated
        assert tele.metrics["front_size"] == len(result.front)
        assert tele.metrics["cache_hit_rate"] == 0.0

    def test_progress_sees_cached_and_fresh_results(self, tmp_path):
        store = tmp_path / "s.jsonl"
        kwargs = dict(
            axes={"seed": [1]}, base_config=FAST, store_path=store,
            rounds=1, max_workers=1,
        )
        run_exploration(["hotspot"], **kwargs)
        seen = []
        run_exploration(["hotspot"], progress=seen.append, **kwargs)
        assert len(seen) == 1
        assert seen[0].cached

    def test_round_stats_shape(self):
        rnd = ExploreRound(
            number=1, cycles=100, warmup_cycles=20, candidates=8,
            served_from_cache=2, simulated=6, promoted=4,
        )
        assert rnd.cache_hit_rate == 0.25
        doc = rnd.to_dict()
        assert doc["round"] == 1
        assert doc["cache_hit_rate"] == 0.25
        assert ExploreRound(
            number=1, cycles=1, warmup_cycles=0, candidates=0
        ).cache_hit_rate == 0.0
