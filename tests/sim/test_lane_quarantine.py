"""Batch lane quarantine: diverged lanes are evicted mid-run, survivors
keep their bit-identity contract.

``run_cosim_batch``'s equivalence oracle (tests/sim/test_cosim_batch)
covers healthy runs; these tests drive the *unhealthy* path with
deterministic NaN poisoning via the chaos harness and assert the
quarantine semantics: an evicted lane yields a structured ``diverged``
verdict with its clean waveform prefix, every surviving lane finishes
byte-identical to its serial run, and a fully-dead batch degrades to
truncated results instead of a crash.
"""

import numpy as np
import pytest

from repro.faults.chaos import ChaosEvent, ChaosPlan
from repro.sim.cosim import CosimConfig, CosimLane, run_cosim, run_cosim_batch
from repro.telemetry import Telemetry

CYCLES = 120
WARMUP = 30


def cfg(seed, **kw):
    return CosimConfig(cycles=CYCLES, warmup_cycles=WARMUP, seed=seed, **kw)


def three_lanes():
    return [
        CosimLane("hotspot", cfg(3)),
        CosimLane("bfs", cfg(5)),
        CosimLane("srad", cfg(7)),
    ]


def poison(at, lane=None):
    """A repeatable (once=False) NaN poisoning of ``lane`` at cycle ``at``.

    once=False keeps serial re-runs of the same plan deterministic:
    the fault is persistent, not claimed away by the first firing.
    """
    return ChaosEvent("cosim_cycle", "nan_poison", at=at, lane=lane, once=False)


class TestEviction:
    def test_poisoned_lane_is_quarantined_survivors_bit_identical(
        self, chaos_plan
    ):
        lanes = three_lanes()
        serial = [run_cosim(ln.benchmark, ln.config) for ln in lanes]
        chaos_plan(ChaosPlan("quarantine", [poison(at=25, lane=1)]))
        batch = run_cosim_batch(lanes)

        assert not batch[0].diverged and not batch[2].diverged
        assert batch[1].diverged
        # Survivors: every recorded field byte-identical to serial.
        for row in (0, 2):
            assert np.array_equal(
                batch[row].sm_voltages, serial[row].sm_voltages
            ), f"lane {row} voltages diverged from serial"
            assert np.array_equal(
                batch[row].power_trace.data, serial[row].power_trace.data
            )
            assert np.array_equal(
                batch[row].supply_current, serial[row].supply_current
            )
            assert batch[row].instructions == serial[row].instructions
            assert batch[row].num_cycles == CYCLES

    def test_dead_lane_keeps_its_clean_prefix(self, chaos_plan):
        lanes = three_lanes()
        serial_mid = run_cosim(lanes[1].benchmark, lanes[1].config)
        chaos_plan(ChaosPlan("prefix", [poison(at=25, lane=1)]))
        batch = run_cosim_batch(lanes)
        dead = batch[1]
        assert dead.num_cycles == 25
        assert np.array_equal(dead.sm_voltages, serial_mid.sm_voltages[:25])
        assert np.array_equal(
            dead.supply_current, serial_mid.supply_current[:25]
        )
        assert np.isfinite(dead.sm_voltages).all()

    def test_divergence_forensics_name_the_original_lane(self, chaos_plan):
        lanes = three_lanes()
        chaos_plan(ChaosPlan("forensics", [poison(at=25, lane=2)]))
        batch = run_cosim_batch(lanes)
        info = batch[2].divergence
        assert info is not None
        assert info["lane"] == 2
        assert info["benchmark"] == "srad"
        assert info["stage"] == "exhausted"
        assert info["cycle"] == 25

    def test_staggered_evictions_leave_a_lone_survivor(self, chaos_plan):
        lanes = three_lanes()
        serial_mid = run_cosim(lanes[1].benchmark, lanes[1].config)
        chaos_plan(ChaosPlan("staggered", [
            poison(at=20, lane=0),
            poison(at=40, lane=2),
        ]))
        batch = run_cosim_batch(lanes)
        assert batch[0].diverged and batch[0].num_cycles == 20
        assert batch[2].diverged and batch[2].num_cycles == 40
        assert not batch[1].diverged
        # The survivor rode through two compactions bit-exactly.
        assert np.array_equal(batch[1].sm_voltages, serial_mid.sm_voltages)
        assert batch[1].instructions == serial_mid.instructions

    def test_all_lanes_dead_is_truncation_not_a_crash(self, chaos_plan):
        lanes = three_lanes()
        chaos_plan(ChaosPlan("wipeout", [poison(at=15, lane=None)]))
        batch = run_cosim_batch(lanes)
        for result in batch:
            assert result.diverged
            assert result.num_cycles == 15
            assert np.isfinite(result.sm_voltages).all()

    def test_warmup_poisoning_yields_an_empty_measured_window(
        self, chaos_plan
    ):
        lanes = [CosimLane("hotspot", cfg(3))]
        # Recorded cycle indices are negative during warmup.
        chaos_plan(ChaosPlan("warmup", [poison(at=-10, lane=0)]))
        batch = run_cosim_batch(lanes)
        assert batch[0].diverged
        assert batch[0].num_cycles == 0
        assert np.isnan(batch[0].min_voltage)


class TestTelemetry:
    def test_quarantine_counters_and_events(self, chaos_plan):
        lanes = three_lanes()
        chaos_plan(ChaosPlan("tele", [poison(at=25, lane=1)]))
        tele = Telemetry(run_id="quarantine-test")
        run_cosim_batch(lanes, telemetry=tele)
        assert tele.counters.get("lanes_quarantined") == 1
        assert tele.counters.get("guard_divergences", 0) >= 1
        kinds = [e["kind"] for e in tele.events]
        assert "lane_quarantined" in kinds

    def test_serial_divergence_is_a_structured_verdict(self, chaos_plan):
        chaos_plan(ChaosPlan("serial", [poison(at=25)]))
        result = run_cosim("hotspot", cfg(3))
        assert result.diverged
        assert result.num_cycles == 25
        assert result.divergence["stage"] == "exhausted"
        assert np.isfinite(result.sm_voltages).all()
