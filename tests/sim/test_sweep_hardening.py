"""Tests for the hardened sweep runner: timeouts, retries, checkpoints.

Point runners injected via ``point_runner`` live at module level so the
process-pool path can pickle them; the timeout path forks, so module
globals set by a test (e.g. scratch directories) are visible in the
children.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.sim.cosim import CosimConfig
from repro.sim.sweep import (
    SweepPoint,
    SweepPointResult,
    SweepRunner,
    expand_grid,
    run_sweep,
)

FAST = CosimConfig(cycles=40, warmup_cycles=10)

# Scratch state for the flaky runner (set per-test, inherited by fork).
_FLAKY_DIR = None


def _ok_runner(payload):
    point, _ = payload
    return SweepPointResult(point=point, ok=True, metrics={"index": point.index})


def _hang_on_first_runner(payload):
    point, _ = payload
    if point.index == 0:
        time.sleep(60)
    return _ok_runner(payload)


def _crash_runner(payload):
    os._exit(3)


def _fail_value_error_runner(payload):
    point, _ = payload
    raise_marker = point.index % 2 == 0
    if raise_marker:
        return SweepPointResult(
            point=point, ok=False, error="ValueError: bad point",
            error_type="ValueError",
        )
    return _ok_runner(payload)


def _flaky_runner(payload):
    """Crashes hard twice for point 0, then succeeds (state on disk)."""
    point, _ = payload
    marker = Path(_FLAKY_DIR) / str(point.index)
    attempt = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(attempt + 1))
    if point.index == 0 and attempt < 2:
        os._exit(3)
    return _ok_runner(payload)


def _slow_metric_runner(payload):
    """Succeeds instantly but reports one second of (fake) wall time."""
    point, _ = payload
    return SweepPointResult(
        point=point, ok=True, metrics={"index": point.index}, elapsed_s=1.0
    )


def _sleep_then_crash_batch(payload):
    """Batch runner that burns real wall time, then dies hard."""
    time.sleep(0.5)
    os._exit(3)


def two_points():
    return expand_grid(["hotspot"], {"seed": [1, 2]})


class TestTimeouts:
    def test_hanging_point_is_killed_and_structured(self):
        start = time.monotonic()
        result = SweepRunner(
            two_points(), FAST, max_workers=2, point_timeout_s=1.0,
            point_runner=_hang_on_first_runner,
        ).run()
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 60 s hang
        hung, fine = result.points
        assert not hung.ok
        assert hung.timed_out
        assert hung.error_type == "TimeoutError"
        assert "timeout" in hung.error
        assert fine.ok

    def test_worker_crash_is_structured(self):
        result = SweepRunner(
            two_points(), FAST, max_workers=2, point_timeout_s=30.0,
            point_runner=_crash_runner,
        ).run()
        assert result.num_failed == 2
        assert all(p.error_type == "WorkerCrash" for p in result.points)
        assert all("exit code" in p.error for p in result.points)

    def test_batch_crash_splits_wall_time_across_points(self, monkeypatch):
        """A dead batch worker's wall time is divided over the batch's
        points (like the timeout branch), not charged in full to every
        one — else utilization over-counts by the batch width."""
        import time as time_mod

        monkeypatch.setattr(
            "repro.sim.sweep._run_point_batch", _sleep_then_crash_batch
        )
        start = time_mod.monotonic()
        result = SweepRunner(
            two_points(), FAST, max_workers=1, point_timeout_s=30.0,
            batch_size=2,
        ).run()
        wall = time_mod.monotonic() - start
        assert result.num_failed == 2
        a, b = result.points
        assert a.error_type == b.error_type == "WorkerCrash"
        # Both points of the one batch share the same split charge, and
        # each gets at most half the run's wall clock (the un-split bug
        # charged each point the full >=0.5 s batch duration).
        assert a.elapsed_s == b.elapsed_s
        assert 0 < a.elapsed_s <= wall / 1.9
        assert a.elapsed_s + b.elapsed_s <= wall

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="point_timeout_s"):
            SweepRunner(two_points(), FAST, point_timeout_s=0.0)


class TestRetries:
    def test_retryable_crash_is_retried_to_success(self, tmp_path):
        global _FLAKY_DIR
        _FLAKY_DIR = str(tmp_path)
        result = SweepRunner(
            two_points(), FAST, max_workers=2, point_timeout_s=30.0,
            max_attempts=3, retry_backoff_s=0.01,
            point_runner=_flaky_runner,
        ).run()
        flaky, stable = result.points
        assert flaky.ok
        assert flaky.attempts == 3
        assert stable.ok
        assert stable.attempts == 1

    def test_deterministic_failures_are_not_retried(self, tmp_path):
        global _FLAKY_DIR
        _FLAKY_DIR = str(tmp_path)
        result = SweepRunner(
            two_points(), FAST, max_workers=1, max_attempts=3,
            retry_backoff_s=0.01, point_runner=_fail_value_error_runner,
        ).run()
        failed = [p for p in result.points if not p.ok]
        assert failed
        assert all(p.attempts == 1 for p in failed)

    def test_attempts_exhausted_keeps_last_failure(self, tmp_path):
        result = SweepRunner(
            two_points(), FAST, max_workers=2, point_timeout_s=30.0,
            max_attempts=2, retry_backoff_s=0.01, point_runner=_crash_runner,
        ).run()
        assert all(not p.ok for p in result.points)
        assert all(p.attempts == 2 for p in result.points)


class TestCheckpointResume:
    def test_checkpoint_written_and_resume_skips_completed(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        points = two_points()
        SweepRunner(
            points, FAST, max_workers=1, checkpoint_path=ckpt,
            point_runner=_ok_runner,
        ).run()
        data = json.loads(ckpt.read_text())
        assert len(data["completed"]) == len(points)
        assert data["config_hash"]

        calls = []

        def counting_runner(payload):
            calls.append(payload[0].index)
            return _ok_runner(payload)

        resumed = SweepRunner.resume(
            ckpt, points, FAST, max_workers=1, point_runner=counting_runner
        )
        result = resumed.run()
        assert calls == []  # nothing re-ran
        assert all(p.ok for p in result.points)
        assert len(result.points) == len(points)

    def test_resume_reruns_recorded_failures(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        points = two_points()
        SweepRunner(
            points, FAST, max_workers=1, checkpoint_path=ckpt,
            point_runner=_fail_value_error_runner,
        ).run()

        calls = []

        def counting_runner(payload):
            calls.append(payload[0].index)
            return _ok_runner(payload)

        result = SweepRunner.resume(
            ckpt, points, FAST, max_workers=1, max_attempts=2,
            point_runner=counting_runner,
        ).run()
        # Point 0 failed in the first run (even index, 1 of 2 attempts
        # spent) and re-ran; the success was served from the checkpoint.
        assert calls == [0]
        assert all(p.ok for p in result.points)
        assert result.points[0].attempts == 2

    def test_mid_run_kill_then_resume(self, tmp_path):
        """The acceptance flow: a sweep dies partway, the checkpoint has
        the finished prefix, resume completes only the remainder."""
        ckpt = tmp_path / "ckpt.json"
        points = expand_grid(["hotspot"], {"seed": [1, 2, 3, 4]})

        class Boom(RuntimeError):
            pass

        done = []

        def dies_after_two(payload):
            if len(done) >= 2:
                raise Boom("simulated crash of the whole driver")
            done.append(payload[0].index)
            return _ok_runner(payload)

        runner = SweepRunner(
            points, FAST, max_workers=1, checkpoint_path=ckpt,
            point_runner=dies_after_two,
        )
        result = runner.run()  # failures are captured, not raised
        assert result.num_failed == 2
        assert len(json.loads(ckpt.read_text())["completed"]) == 4

        calls = []

        def counting_runner(payload):
            calls.append(payload[0].index)
            return _ok_runner(payload)

        resumed = SweepRunner.resume(
            ckpt, points, FAST, max_workers=1, max_attempts=2,
            point_runner=counting_runner,
        ).run()
        assert sorted(calls) == [2, 3]  # completed points NOT re-run
        assert all(p.ok for p in resumed.points)

    def test_resume_does_not_reset_the_retry_budget(self, tmp_path):
        """Attempts carry over from the checkpoint: a point that spent
        its whole budget failing is NOT granted a fresh ``max_attempts``
        by every resume — total attempts across resumes stay bounded."""
        ckpt = tmp_path / "ckpt.json"
        points = two_points()
        first = SweepRunner(
            points, FAST, max_workers=2, point_timeout_s=30.0,
            max_attempts=2, retry_backoff_s=0.01, checkpoint_path=ckpt,
            point_runner=_crash_runner,
        ).run()
        assert all(p.attempts == 2 for p in first.points)

        calls = []

        def counting_runner(payload):
            calls.append(payload[0].index)
            return _ok_runner(payload)

        resumed = SweepRunner.resume(
            ckpt, points, FAST, max_workers=1, max_attempts=2,
            point_runner=counting_runner,
        ).run()
        # Budget exhausted in run 1: nothing re-ran, the recorded
        # failures (with their true attempt counts) are served back.
        assert calls == []
        assert all(not p.ok for p in resumed.points)
        assert all(p.attempts == 2 for p in resumed.points)
        assert all(p.error_type == "WorkerCrash" for p in resumed.points)

    def test_resume_grants_only_the_remaining_attempts(self, tmp_path):
        """One attempt spent before the crash + a budget of two leaves
        exactly one more try, not two."""
        ckpt = tmp_path / "ckpt.json"
        points = two_points()
        SweepRunner(
            points, FAST, max_workers=1, checkpoint_path=ckpt,
            point_runner=_fail_value_error_runner,
        ).run()

        calls = []

        def still_failing(payload):
            point, _ = payload
            calls.append(point.index)
            return SweepPointResult(
                point=point, ok=False, error="timeout", timed_out=True,
                error_type="TimeoutError",
            )

        result = SweepRunner.resume(
            ckpt, points, FAST, max_workers=1, max_attempts=2,
            retry_backoff_s=0.01, point_runner=still_failing,
        ).run()
        # Point 0 carried attempts=1 into the resume; even though the
        # new failure is retryable, only one more attempt fits.
        assert calls == [0]
        assert result.points[0].attempts == 2

    def test_resumed_utilization_excludes_preloaded_wall_time(self, tmp_path):
        """Checkpointed results spent their wall time in a previous run;
        counting it against this run's tiny wall clock used to report
        utilizations far above 1."""
        from repro.telemetry import Telemetry

        ckpt = tmp_path / "ckpt.json"
        points = two_points()
        SweepRunner(
            points, FAST, max_workers=1, checkpoint_path=ckpt,
            point_runner=_slow_metric_runner,
        ).run()

        tele = Telemetry(run_id="resume-util")
        SweepRunner.resume(
            ckpt, points, FAST, max_workers=1,
            point_runner=_slow_metric_runner,
        ).run(telemetry=tele)
        # Everything was preloaded: zero busy time this run.
        assert tele.metrics["num_resumed"] == 2
        assert tele.metrics["worker_utilization"] == 0.0

    def test_resume_rejects_different_config(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        points = two_points()
        SweepRunner(
            points, FAST, max_workers=1, checkpoint_path=ckpt,
            point_runner=_ok_runner,
        ).run()
        other = CosimConfig(cycles=80, warmup_cycles=10)
        with pytest.raises(ValueError, match="different base"):
            SweepRunner.resume(ckpt, points, other, max_workers=1)

    def test_resume_rejects_different_grid(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        SweepRunner(
            two_points(), FAST, max_workers=1, checkpoint_path=ckpt,
            point_runner=_ok_runner,
        ).run()
        other_points = expand_grid(["hotspot"], {"seed": [5, 6]})
        with pytest.raises(ValueError, match="different base|grid"):
            SweepRunner.resume(ckpt, other_points, FAST, max_workers=1)


class TestAtomicResults:
    def test_write_json_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        result = SweepRunner(
            two_points(), FAST, max_workers=1, point_runner=_ok_runner
        ).run()
        out = tmp_path / "nested" / "results.json"
        result.write_json(out)
        data = json.loads(out.read_text())
        assert data["num_points"] == 2
        assert data["points"][0]["attempts"] == 1
        leftovers = [p for p in out.parent.iterdir() if p != out]
        assert leftovers == []

    def test_point_record_round_trips(self):
        point = SweepPoint(
            index=3, benchmark="bfs", overrides=(("seed", 9),), seed=9
        )
        original = SweepPointResult(
            point=point, ok=False, error="boom", error_type="TimeoutError",
            elapsed_s=1.5, attempts=2, timed_out=True, note="n",
        )
        rebuilt = SweepPointResult.from_record(original.to_record())
        assert rebuilt.point == point
        assert rebuilt.timed_out
        assert rebuilt.attempts == 2
        assert rebuilt.error_type == "TimeoutError"
        assert rebuilt.note == "n"


class TestStructuredNotes:
    def test_short_run_notes_unavailable_metric(self):
        result = run_sweep(
            ["hotspot"], {"seed": [1]}, base_config=FAST, max_workers=1
        )
        (point,) = result.points
        assert point.ok
        assert point.metrics["cycles_per_kernel"] is None
        assert "cycles_per_kernel unavailable" in point.note

    def test_long_run_has_no_note(self):
        # A kernel duration needs two hotspot launches (~6000 cycles).
        result = run_sweep(
            ["hotspot"], {"seed": [1]},
            base_config=CosimConfig(cycles=6000, warmup_cycles=100),
            max_workers=1,
        )
        (point,) = result.points
        assert point.ok
        assert point.note is None
        assert point.metrics["cycles_per_kernel"] is not None
