"""Tests for the coupled GPU/PDN/controller simulation."""

import numpy as np
import pytest

from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig
from repro.sim.cosim import (
    CosimConfig,
    LayerShutoffEvent,
    run_cosim,
)
from repro.sim.pds_configs import PDS_CONFIGS, PDSKind


@pytest.fixture(scope="module")
def short_run():
    return run_cosim(
        "hotspot", CosimConfig(cycles=1200, warmup_cycles=150, seed=3)
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cycles": 0},
            {"warmup_cycles": -1},
            {"circuit_substeps": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CosimConfig(**kwargs)


class TestCoupledRun:
    def test_shapes(self, short_run):
        assert short_run.sm_voltages.shape == (1200, 16)
        assert short_run.power_trace.data.shape == (1200, 16)
        assert short_run.supply_current.shape == (1200,)

    def test_voltages_near_nominal(self, short_run):
        median = float(np.median(short_run.sm_voltages))
        assert 0.9 < median < 1.1

    def test_noise_bounded_with_cross_layer(self, short_run):
        """The cross-layer default keeps the supply well-behaved."""
        assert short_run.voltage_percentiles(1) > 0.75
        assert short_run.min_voltage > 0.5

    def test_supply_current_is_layer_scale(self, short_run):
        # Series stack: board current ~ total power / board voltage.
        expected = short_run.power_trace.mean_power_w / 4.1
        assert short_run.supply_current.mean() == pytest.approx(
            expected, rel=0.25
        )

    def test_efficiency_in_vs_band(self, short_run):
        eff = short_run.efficiency()
        assert 0.88 < eff.pde < 0.97

    def test_summary_mentions_benchmark(self, short_run):
        assert "hotspot" in short_run.summary()

    def test_throughput_positive(self, short_run):
        assert short_run.throughput() > 4.0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            run_cosim("nope", CosimConfig(cycles=10))


class TestControllerCoupling:
    def test_controller_reduces_noise_vs_circuit_only(self):
        """Fig. 11's core claim at the 0.2x CR-IVR sizing."""
        base = CosimConfig(cycles=1500, warmup_cycles=150, seed=5)
        with_ctl = run_cosim("fastwalsh", base)
        without_ctl = run_cosim(
            "fastwalsh",
            CosimConfig(
                cycles=1500, warmup_cycles=150, seed=5, use_controller=False
            ),
        )
        assert (
            with_ctl.voltage_percentiles(1)
            >= without_ctl.voltage_percentiles(1) - 1e-3
        )
        assert with_ctl.min_voltage >= without_ctl.min_voltage - 1e-3

    def test_diws_only_actuation(self):
        result = run_cosim(
            "hotspot",
            CosimConfig(
                cycles=800,
                warmup_cycles=100,
                actuation=WeightedActuation(w1=1.0, w2=0.0, w3=0.0),
            ),
        )
        assert result.fake_instructions == 0

    def test_fii_engages_on_sustained_overvoltage(self):
        """Brief spikes are filtered out; a sustained underdrawing layer
        (the shutoff event) engages FII through the boost trigger."""
        result = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=1500, warmup_cycles=200, seed=7,
                shutoff=LayerShutoffEvent(layer=3, start_cycle=300),
            ),
        )
        assert result.fake_instructions > 0

    def test_controller_power_counted(self, short_run):
        assert short_run.controller_power_w == pytest.approx(1.634e-3)


class TestWarmupWindowAccounting:
    """fake_instructions / throttled_cycles must count only the recorded
    window, exactly like the instruction counter.

    Warmup changes *recording*, never dynamics (absent a shutoff event),
    so a run with warmup W and N recorded cycles must report the same
    work counters as the difference between warmup-0 runs of W+N and W
    total cycles.  Before the fix, the windowed run reported the whole
    W+N total for fakes and throttles.
    """

    # Aggressive triggers so both FII and DIWS engage during the
    # warmup prefix — otherwise the regression has nothing to catch.
    KW = dict(
        cr_ivr_area_mm2=52.9,
        seed=7,
        controller=ControllerConfig(
            v_threshold=0.98, v_high_threshold=1.0, k1=15.0
        ),
    )
    WARMUP = 300
    RECORDED = 300

    @pytest.fixture(scope="class")
    def runs(self):
        full = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=self.WARMUP + self.RECORDED, warmup_cycles=0, **self.KW
            ),
        )
        prefix = run_cosim(
            "heartwall",
            CosimConfig(cycles=self.WARMUP, warmup_cycles=0, **self.KW),
        )
        windowed = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=self.RECORDED, warmup_cycles=self.WARMUP, **self.KW
            ),
        )
        return full, prefix, windowed

    def test_warmup_prefix_exercises_both_counters(self, runs):
        _, prefix, _ = runs
        assert prefix.fake_instructions > 0
        assert prefix.throttled_cycles > 0

    def test_fake_instructions_count_recorded_window_only(self, runs):
        full, prefix, windowed = runs
        assert (
            windowed.fake_instructions
            == full.fake_instructions - prefix.fake_instructions
        )

    def test_throttled_cycles_count_recorded_window_only(self, runs):
        full, prefix, windowed = runs
        assert (
            windowed.throttled_cycles
            == full.throttled_cycles - prefix.throttled_cycles
        )

    def test_instructions_accounting_still_consistent(self, runs):
        full, prefix, windowed = runs
        assert windowed.instructions == full.instructions - prefix.instructions

    def test_zero_warmup_unchanged(self):
        """warmup=0 must report the same totals as before the fix."""
        result = run_cosim(
            "heartwall",
            CosimConfig(cycles=self.WARMUP, warmup_cycles=0, **self.KW),
        )
        assert result.fake_instructions >= 0
        assert result.throttled_cycles >= 0
        assert result.num_cycles == self.WARMUP


class TestKernelTimeReporting:
    def test_cycles_per_kernel_raises_without_completions(self):
        """Library callers keep the hard error."""
        result = run_cosim(
            "hotspot", CosimConfig(cycles=60, warmup_cycles=10)
        )
        assert result.kernels_completed == 0
        with pytest.raises(ValueError, match="no kernel completed"):
            result.cycles_per_kernel()

    def test_summary_degrades_to_na(self):
        """The human-facing summary reports n/a instead of crashing."""
        result = run_cosim(
            "hotspot", CosimConfig(cycles=60, warmup_cycles=10)
        )
        assert "cycles/kernel n/a" in result.summary()


class TestLayerShutoff:
    def test_shutoff_idles_layer(self):
        event = LayerShutoffEvent(layer=3, start_cycle=400)
        result = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=1000, warmup_cycles=0, shutoff=event,
                use_controller=False,
            ),
        )
        # After shutoff the top layer's SMs draw only idle power.
        late = result.power_trace.data[800:]
        top = late[:, 12:].mean()
        bottom = late[:, :4].mean()
        assert top < 0.6 * bottom

    def test_shutoff_droops_other_layers_without_controller(self):
        event = LayerShutoffEvent(layer=3, start_cycle=300)
        result = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=900, warmup_cycles=0, shutoff=event,
                use_controller=False, cr_ivr_area_mm2=105.8,
            ),
        )
        assert result.min_voltage < 0.7

    def test_event_window(self):
        event = LayerShutoffEvent(layer=2, start_cycle=10, end_cycle=20)
        assert not event.active(9)
        assert event.active(10)
        assert not event.active(20)


class TestPDSConfigs:
    def test_four_rows(self):
        assert len(PDS_CONFIGS) == 4

    def test_cross_layer_smaller_than_circuit_only(self):
        circuit = PDS_CONFIGS[PDSKind.VS_CIRCUIT_ONLY]
        cross = PDS_CONFIGS[PDSKind.VS_CROSS_LAYER]
        assert cross.cr_ivr_area_mm2 < 0.2 * circuit.cr_ivr_area_mm2
        assert cross.has_controller
        assert not circuit.has_controller

    def test_paper_anchor_metadata(self):
        assert PDS_CONFIGS[PDSKind.CONVENTIONAL_VRM].paper_pde == 0.80
        assert PDS_CONFIGS[PDSKind.VS_CROSS_LAYER].paper_pde == 0.923
