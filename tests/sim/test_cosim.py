"""Tests for the coupled GPU/PDN/controller simulation."""

import numpy as np
import pytest

from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig
from repro.sim.cosim import (
    CosimConfig,
    LayerShutoffEvent,
    run_cosim,
)
from repro.sim.pds_configs import PDS_CONFIGS, PDSKind


@pytest.fixture(scope="module")
def short_run():
    return run_cosim(
        "hotspot", CosimConfig(cycles=1200, warmup_cycles=150, seed=3)
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cycles": 0},
            {"warmup_cycles": -1},
            {"circuit_substeps": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CosimConfig(**kwargs)

    @pytest.mark.parametrize("warmup", [10, 11, 500])
    def test_rejects_warmup_swallowing_window(self, warmup):
        """A warmup at least as long as the measured window leaves
        (nearly) nothing to measure; fail fast with a clear message
        instead of reporting transient-dominated statistics."""
        with pytest.raises(ValueError, match="warmup_cycles"):
            CosimConfig(cycles=10, warmup_cycles=warmup)

    def test_warmup_just_below_window_accepted(self):
        CosimConfig(cycles=10, warmup_cycles=9)


class TestCoupledRun:
    def test_shapes(self, short_run):
        assert short_run.sm_voltages.shape == (1200, 16)
        assert short_run.power_trace.data.shape == (1200, 16)
        assert short_run.supply_current.shape == (1200,)

    def test_voltages_near_nominal(self, short_run):
        median = float(np.median(short_run.sm_voltages))
        assert 0.9 < median < 1.1

    def test_noise_bounded_with_cross_layer(self, short_run):
        """The cross-layer default keeps the supply well-behaved."""
        assert short_run.voltage_percentiles(1) > 0.75
        assert short_run.min_voltage > 0.5

    def test_supply_current_is_layer_scale(self, short_run):
        # Series stack: board current ~ total power / board voltage.
        expected = short_run.power_trace.mean_power_w / 4.1
        assert short_run.supply_current.mean() == pytest.approx(
            expected, rel=0.25
        )

    def test_efficiency_in_vs_band(self, short_run):
        eff = short_run.efficiency()
        assert 0.88 < eff.pde < 0.97

    def test_summary_mentions_benchmark(self, short_run):
        assert "hotspot" in short_run.summary()

    def test_throughput_positive(self, short_run):
        assert short_run.throughput() > 4.0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            run_cosim("nope", CosimConfig(cycles=10, warmup_cycles=0))


class TestControllerCoupling:
    def test_controller_reduces_noise_vs_circuit_only(self):
        """Fig. 11's core claim at the 0.2x CR-IVR sizing."""
        base = CosimConfig(cycles=1500, warmup_cycles=150, seed=5)
        with_ctl = run_cosim("fastwalsh", base)
        without_ctl = run_cosim(
            "fastwalsh",
            CosimConfig(
                cycles=1500, warmup_cycles=150, seed=5, use_controller=False
            ),
        )
        assert (
            with_ctl.voltage_percentiles(1)
            >= without_ctl.voltage_percentiles(1) - 1e-3
        )
        assert with_ctl.min_voltage >= without_ctl.min_voltage - 1e-3

    def test_diws_only_actuation(self):
        result = run_cosim(
            "hotspot",
            CosimConfig(
                cycles=800,
                warmup_cycles=100,
                actuation=WeightedActuation(w1=1.0, w2=0.0, w3=0.0),
            ),
        )
        assert result.fake_instructions == 0

    def test_fii_engages_on_sustained_overvoltage(self):
        """Brief spikes are filtered out; a sustained underdrawing layer
        (the shutoff event) engages FII through the boost trigger."""
        result = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=1500, warmup_cycles=200, seed=7,
                shutoff=LayerShutoffEvent(layer=3, start_cycle=300),
            ),
        )
        assert result.fake_instructions > 0

    def test_controller_power_counted(self, short_run):
        assert short_run.controller_power_w == pytest.approx(1.634e-3)


class TestWarmupWindowAccounting:
    """fake_instructions / throttled_cycles must count only the recorded
    window, exactly like the instruction counter.

    Warmup changes *recording*, never dynamics (absent a shutoff event),
    so a run with warmup W and N recorded cycles must report the same
    work counters as the difference between warmup-0 runs of W+N and W
    total cycles.  Before the fix, the windowed run reported the whole
    W+N total for fakes and throttles.
    """

    # Aggressive triggers so both FII and DIWS engage during the
    # warmup prefix — otherwise the regression has nothing to catch.
    KW = dict(
        cr_ivr_area_mm2=52.9,
        seed=7,
        controller=ControllerConfig(
            v_threshold=0.98, v_high_threshold=1.0, k1=15.0
        ),
    )
    WARMUP = 300
    RECORDED = 320

    @pytest.fixture(scope="class")
    def runs(self):
        full = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=self.WARMUP + self.RECORDED, warmup_cycles=0, **self.KW
            ),
        )
        prefix = run_cosim(
            "heartwall",
            CosimConfig(cycles=self.WARMUP, warmup_cycles=0, **self.KW),
        )
        windowed = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=self.RECORDED, warmup_cycles=self.WARMUP, **self.KW
            ),
        )
        return full, prefix, windowed

    def test_warmup_prefix_exercises_both_counters(self, runs):
        _, prefix, _ = runs
        assert prefix.fake_instructions > 0
        assert prefix.throttled_cycles > 0

    def test_fake_instructions_count_recorded_window_only(self, runs):
        full, prefix, windowed = runs
        assert (
            windowed.fake_instructions
            == full.fake_instructions - prefix.fake_instructions
        )

    def test_throttled_cycles_count_recorded_window_only(self, runs):
        full, prefix, windowed = runs
        assert (
            windowed.throttled_cycles
            == full.throttled_cycles - prefix.throttled_cycles
        )

    def test_instructions_accounting_still_consistent(self, runs):
        full, prefix, windowed = runs
        assert windowed.instructions == full.instructions - prefix.instructions

    def test_zero_warmup_unchanged(self):
        """warmup=0 must report the same totals as before the fix."""
        result = run_cosim(
            "heartwall",
            CosimConfig(cycles=self.WARMUP, warmup_cycles=0, **self.KW),
        )
        assert result.fake_instructions >= 0
        assert result.throttled_cycles >= 0
        assert result.num_cycles == self.WARMUP


class TestKernelTimeReporting:
    def test_cycles_per_kernel_raises_without_completions(self):
        """Library callers keep the hard error."""
        result = run_cosim(
            "hotspot", CosimConfig(cycles=60, warmup_cycles=10)
        )
        assert result.kernels_completed == 0
        with pytest.raises(ValueError, match="no kernel completed"):
            result.cycles_per_kernel()

    def test_summary_degrades_to_na(self):
        """The human-facing summary reports n/a instead of crashing."""
        result = run_cosim(
            "hotspot", CosimConfig(cycles=60, warmup_cycles=10)
        )
        assert "cycles/kernel n/a" in result.summary()


class TestLayerShutoff:
    def test_shutoff_idles_layer(self):
        event = LayerShutoffEvent(layer=3, start_cycle=400)
        result = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=1000, warmup_cycles=0, shutoff=event,
                use_controller=False,
            ),
        )
        # After shutoff the top layer's SMs draw only idle power.
        late = result.power_trace.data[800:]
        top = late[:, 12:].mean()
        bottom = late[:, :4].mean()
        assert top < 0.6 * bottom

    def test_shutoff_droops_other_layers_without_controller(self):
        event = LayerShutoffEvent(layer=3, start_cycle=300)
        result = run_cosim(
            "heartwall",
            CosimConfig(
                cycles=900, warmup_cycles=0, shutoff=event,
                use_controller=False, cr_ivr_area_mm2=105.8,
            ),
        )
        assert result.min_voltage < 0.7

    def test_event_window(self):
        event = LayerShutoffEvent(layer=2, start_cycle=10, end_cycle=20)
        assert not event.active(9)
        assert event.active(10)
        assert not event.active(20)


class TestDCCEngagement:
    """Regression for the shared-slew unit bug (satellite of the
    telemetry PR): with 0.02 W per decision the k3 = 20 W/V DCC needed
    ~630 decisions to reach its DAC full scale, so during a sustained
    layer shutoff the compensation never arrived.  The per-actuator
    ``slew_dcc_w`` restores it."""

    BASE = dict(
        cycles=1500, warmup_cycles=200, seed=7,
        shutoff=LayerShutoffEvent(layer=3, start_cycle=0),
    )

    @pytest.fixture(scope="class")
    def commanded_w(self):
        """Total commanded DCC power, from the *uncompensated* run's
        overvoltage on the shutoff layer: min(k3*(V - Vnom), DAC max)
        per SM.  (The compensated run closes the loop and pulls the
        voltage back to ~1 V, so the error must be read open-loop.)"""
        off = run_cosim(
            "heartwall",
            CosimConfig(
                actuation=WeightedActuation(w1=1.0, w2=0.0, w3=0.0),
                **self.BASE,
            ),
        )
        cfg = ControllerConfig()
        dac_max = WeightedActuation().dac.max_power_w
        v_late = off.sm_voltages[-600:, 12:16].mean(axis=0)
        per_sm = np.minimum(
            np.maximum(v_late - cfg.v_nominal, 0.0) * cfg.k3, dac_max
        )
        assert per_sm.sum() > 1.0  # the scenario must demand real power
        return float(per_sm.sum())

    def test_dcc_reaches_half_of_commanded_power(self, commanded_w):
        on = run_cosim(
            "heartwall",
            CosimConfig(
                actuation=WeightedActuation(w1=1.0, w2=0.0, w3=1.0),
                **self.BASE,
            ),
        )
        assert on.mean_dcc_power_w >= 0.5 * commanded_w
        # And the loop actually closes: the shutoff layer's overvoltage
        # is pulled back near nominal.
        assert on.sm_voltages[-600:, 12:16].mean() < 1.05


class TestCosimTelemetry:
    @pytest.fixture(scope="class")
    def recorded(self):
        from repro.telemetry import Telemetry

        tele = Telemetry(run_id="test")
        result = run_cosim(
            "hotspot",
            CosimConfig(cycles=400, warmup_cycles=100),
            telemetry=tele,
        )
        return tele, result

    def test_stage_times_sum_to_wall(self, recorded):
        """The per-stage split must account for the run: stage sum
        within 10% of the recorder's wall clock (the residual stages
        ``setup``/``loop_other``/``finalize`` close the gap)."""
        tele, _ = recorded
        wall = tele.elapsed_s
        stage_sum = sum(tele.timings.values())
        assert wall > 0
        assert abs(stage_sum - wall) / wall <= 0.10

    def test_stage_names(self, recorded):
        tele, _ = recorded
        for stage in ("setup", "gpu_model", "transient_solve",
                      "controller", "record", "loop_other", "finalize"):
            assert stage in tele.timings

    def test_work_counters(self, recorded):
        tele, result = recorded
        total = 400 + 100
        assert tele.counters["cycles"] == 400
        assert tele.counters["solver_steps"] == total * 2  # substeps
        assert tele.counters["solver_factorizations"] == 1
        assert tele.counters["instructions"] == result.instructions
        assert "controller_decisions_made" in tele.counters
        assert "controller_slew_saturated_dcc" in tele.counters

    def test_channels_cover_recorded_window(self, recorded):
        tele, _ = recorded
        for name in ("min_sm_voltage_v", "total_power_w", "dcc_power_w",
                     "worst_layer_imbalance_w"):
            chan = tele.channels[name]
            assert chan.offered == 400
            assert len(chan) > 0

    def test_dcc_channel_integrates_to_mean(self, recorded):
        """The per-cycle boost channel is consistent with the surviving
        scalar: its time average equals mean_dcc_power_w (no decimation
        at 400 offers under the 4096 default capacity)."""
        tele, result = recorded
        chan = tele.channels["dcc_power_w"]
        assert chan.stride == 1
        assert np.mean(chan.values) == pytest.approx(
            result.mean_dcc_power_w, abs=1e-12
        )

    def test_worst_layer_imbalance_channel_nonnegative(self, recorded):
        tele, _ = recorded
        values = np.asarray(tele.channels["worst_layer_imbalance_w"].values)
        assert np.all(values >= 0.0)
        # hotspot's jittery issue keeps the layers from perfect balance.
        assert values.max() > 0.0

    def test_noise_section_attached(self, recorded):
        """The observatory report rides the manifest as the ``noise``
        section, with a closing ledger and the compare KPIs."""
        tele, result = recorded
        noise = tele.sections["noise"]
        assert noise["benchmark"] == "hotspot"
        assert len(noise["bands"]) == 3
        assert noise["ledger"]["closure_rel_error"] <= 0.01
        assert noise["summary"]["pde"] == pytest.approx(
            result.efficiency().pde
        )

    def test_too_short_run_skips_noise_section(self):
        from repro.telemetry import Telemetry

        tele = Telemetry(run_id="short")
        run_cosim(
            "hotspot", CosimConfig(cycles=6, warmup_cycles=1),
            telemetry=tele,
        )
        assert "noise" not in tele.sections
        assert any(
            e["kind"] == "noise_report_skipped" for e in tele.events
        )

    def test_headline_metrics_match_result(self, recorded):
        tele, result = recorded
        assert tele.metrics["min_voltage_v"] == result.min_voltage
        assert tele.metrics["throughput_ipc"] == result.throughput()

    def test_events_bracket_the_run(self, recorded):
        tele, _ = recorded
        kinds = [e["kind"] for e in tele.events]
        assert kinds[0] == "cosim_start"
        assert kinds[-1] == "cosim_done"

    def test_disabled_recorder_records_nothing(self):
        from repro.telemetry import Telemetry

        tele = Telemetry(enabled=False)
        run_cosim(
            "hotspot",
            CosimConfig(cycles=40, warmup_cycles=10),
            telemetry=tele,
        )
        assert tele.timings == {}
        assert tele.counters == {}

    def test_result_identical_with_and_without_telemetry(self):
        from repro.telemetry import Telemetry

        cfg = CosimConfig(cycles=120, warmup_cycles=20, seed=11)
        plain = run_cosim("hotspot", cfg)
        traced = run_cosim("hotspot", cfg, telemetry=Telemetry())
        assert np.array_equal(plain.sm_voltages, traced.sm_voltages)
        assert plain.instructions == traced.instructions
        assert plain.throttled_cycles == traced.throttled_cycles


class TestPDSConfigs:
    def test_four_rows(self):
        assert len(PDS_CONFIGS) == 4

    def test_cross_layer_smaller_than_circuit_only(self):
        circuit = PDS_CONFIGS[PDSKind.VS_CIRCUIT_ONLY]
        cross = PDS_CONFIGS[PDSKind.VS_CROSS_LAYER]
        assert cross.cr_ivr_area_mm2 < 0.2 * circuit.cr_ivr_area_mm2
        assert cross.has_controller
        assert not circuit.has_controller

    def test_paper_anchor_metadata(self):
        assert PDS_CONFIGS[PDSKind.CONVENTIONAL_VRM].paper_pde == 0.80
        assert PDS_CONFIGS[PDSKind.VS_CROSS_LAYER].paper_pde == 0.923
