"""Loud-fallback contract of the C engine build (repro.gpu._cbuild).

A failed C kernel build must never silently degrade a campaign to the
slow path: the first failure warns (once), every consumer landing on
the NumPy path is counted, and a co-simulation run with telemetry
carries the count as the ``gpu.backend_fallback`` counter.  The
``REPRO_GPU_CBUILD`` env var forces the failure deterministically
(``fail``) or silences the warning (``quiet``) for tests and CI.
"""

import warnings

import pytest

from repro.gpu import _cbuild


@pytest.fixture
def forced_failure(monkeypatch):
    """Force the build to fail, with clean counter state either side."""
    _cbuild.reset_fallback_state()
    monkeypatch.setenv(_cbuild.CBUILD_ENV, "fail")
    yield
    _cbuild.reset_fallback_state()


class TestForcedFailure:
    def test_forced_build_failure_returns_none(self, forced_failure):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert _cbuild.load_engine_lib() is None
        assert _cbuild.build_fallback_count() == 1

    def test_first_failure_warns_once(self, forced_failure):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _cbuild.load_engine_lib()
            _cbuild.load_engine_lib()
        fallback = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "falling back" in str(w.message)
        ]
        assert len(fallback) == 1
        # ... but every consumer landing on the slow path is counted.
        assert _cbuild.build_fallback_count() == 2

    def test_quiet_mode_counts_without_warning(self, monkeypatch):
        _cbuild.reset_fallback_state()
        monkeypatch.setenv(_cbuild.CBUILD_ENV, "quiet")
        # 'quiet' does not force a failure; force one via the cached
        # failed-load state instead.
        monkeypatch.setitem(_cbuild._LIB_CACHE, "lib", _cbuild._LOAD_FAILED)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert _cbuild.load_engine_lib() is None
        assert caught == []
        assert _cbuild.build_fallback_count() == 1
        _cbuild.reset_fallback_state()

    def test_reset_rearms_the_warning(self, forced_failure):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            _cbuild.load_engine_lib()
        _cbuild.reset_fallback_state()
        assert _cbuild.build_fallback_count() == 0
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _cbuild.load_engine_lib()
        assert any("falling back" in str(w.message) for w in caught)


class TestCosimTelemetry:
    def test_fallback_count_lands_in_run_telemetry(self, forced_failure):
        from repro.sim.cosim import CosimConfig, run_cosim
        from repro.telemetry import Telemetry

        tele = Telemetry(run_id="fallback-test")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = run_cosim(
                "hotspot",
                CosimConfig(cycles=40, warmup_cycles=10, seed=1),
                telemetry=tele,
            )
        assert not result.diverged
        assert tele.counters.get("gpu.backend_fallback", 0) >= 1
