"""Unit tests for the instruction set definitions."""

import pytest

from repro.gpu.isa import (
    ENERGY,
    FAKE_INSTRUCTION,
    LATENCY,
    UNIT_FOR_CLASS,
    ExecUnit,
    Instruction,
    InstructionClass,
)


class TestCoverage:
    def test_every_class_has_unit_latency_energy(self):
        for cls in InstructionClass:
            assert cls in UNIT_FOR_CLASS
            assert cls in LATENCY
            assert cls in ENERGY

    def test_energies_positive_nanojoule_scale(self):
        for cls, energy in ENERGY.items():
            assert 0 < energy < 20e-9, cls

    def test_memory_ops_use_lsu(self):
        assert UNIT_FOR_CLASS[InstructionClass.LOAD] is ExecUnit.LSU
        assert UNIT_FOR_CLASS[InstructionClass.STORE] is ExecUnit.LSU

    def test_transcendentals_use_sfu(self):
        assert UNIT_FOR_CLASS[InstructionClass.SFU] is ExecUnit.SFU


class TestInstruction:
    def test_properties_delegate_to_tables(self):
        i = Instruction(InstructionClass.FMA, dest=3, srcs=(1, 2))
        assert i.unit is ExecUnit.ALU
        assert i.latency == LATENCY[InstructionClass.FMA]
        assert i.energy == ENERGY[InstructionClass.FMA]

    def test_fake_instruction_has_no_dest(self):
        assert FAKE_INSTRUCTION.dest == -1
        assert FAKE_INSTRUCTION.srcs == ()

    def test_fake_energy_mimics_alu_op(self):
        # FII must draw real power to be an effective actuator.
        assert ENERGY[InstructionClass.FAKE] == pytest.approx(
            ENERGY[InstructionClass.FALU]
        )
