"""Unit tests for warp state and the scoreboard."""

import pytest

from repro.gpu.isa import Instruction, InstructionClass
from repro.gpu.warp import PENDING_MEMORY, Scoreboard, Warp


def alu(dest, *srcs):
    return Instruction(InstructionClass.FALU, dest, tuple(srcs))


class TestScoreboard:
    def test_unwritten_register_is_ready(self):
        assert Scoreboard().is_ready(5, cycle=0)

    def test_pending_write_blocks_until_ready_cycle(self):
        b = Scoreboard()
        b.mark_pending(3, ready_cycle=10)
        assert not b.is_ready(3, 9)
        assert b.is_ready(3, 10)

    def test_memory_pending_blocks_indefinitely(self):
        b = Scoreboard()
        b.mark_pending(3, PENDING_MEMORY)
        assert not b.is_ready(3, 10_000)
        b.release(3, 10_001)
        assert b.is_ready(3, 10_001)

    def test_release_only_affects_memory_pending(self):
        b = Scoreboard()
        b.mark_pending(3, ready_cycle=10)
        b.release(3, 5)  # not memory-pending: no effect
        assert not b.is_ready(3, 5)

    def test_negative_register_ignored(self):
        b = Scoreboard()
        b.mark_pending(-1, 10)
        assert b.pending_count(0) == 0

    def test_pending_count(self):
        b = Scoreboard()
        b.mark_pending(1, 10)
        b.mark_pending(2, PENDING_MEMORY)
        assert b.pending_count(5) == 2
        assert b.pending_count(10) == 1


class TestWarp:
    def test_empty_stream_is_done(self):
        w = Warp(0, [])
        assert w.done
        assert w.peek() is None
        assert not w.is_ready(0)

    def test_raw_dependence_stalls_issue(self):
        w = Warp(0, [alu(1), alu(2, 1)])
        assert w.is_ready(0)
        first = w.advance(0)
        w.scoreboard.mark_pending(first.dest, 0 + first.latency)
        # Second instruction reads r1 which is in flight.
        assert not w.is_ready(1)
        assert w.is_ready(first.latency)

    def test_waw_dependence_stalls_issue(self):
        w = Warp(0, [alu(1), alu(1)])
        first = w.advance(0)
        w.scoreboard.mark_pending(first.dest, 4)
        assert not w.is_ready(1)

    def test_progress(self):
        w = Warp(0, [alu(1), alu(2)])
        assert w.progress == 0.0
        w.advance(0)
        assert w.progress == 0.5

    def test_advance_tracks_last_issue_cycle(self):
        w = Warp(0, [alu(1)])
        w.advance(42)
        assert w.last_issue_cycle == 42
        assert w.done
