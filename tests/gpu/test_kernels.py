"""Tests for kernel specs and warp-stream generation."""

import numpy as np
import pytest

from repro.gpu.isa import InstructionClass
from repro.gpu.kernels import KernelSpec, build_warps


class TestSpecValidation:
    def test_default_spec_is_valid(self):
        KernelSpec("ok")

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="empty mix"):
            KernelSpec("bad", mix={})

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="negative"):
            KernelSpec("bad", mix={InstructionClass.FALU: -1.0})

    def test_rejects_zero_weight_sum(self):
        with pytest.raises(ValueError, match="zero"):
            KernelSpec("bad", mix={InstructionClass.FALU: 0.0})

    @pytest.mark.parametrize("dep", [-0.1, 1.1])
    def test_rejects_out_of_range_dependence(self, dep):
        with pytest.raises(ValueError, match="dependence"):
            KernelSpec("bad", dependence=dep)

    def test_rejects_nonpositive_warps(self):
        with pytest.raises(ValueError, match="warps"):
            KernelSpec("bad", warps_per_sm=0)


class TestGeneration:
    def test_deterministic_given_seed(self):
        spec = KernelSpec("det", body_length=200)
        a = build_warps(spec, seed=5)
        b = build_warps(spec, seed=5)
        for wa, wb in zip(a, b):
            assert [i.op for i in wa.instructions] == [i.op for i in wb.instructions]

    def test_different_seeds_differ(self):
        spec = KernelSpec("det", body_length=200)
        a = build_warps(spec, seed=5)
        b = build_warps(spec, seed=6)
        assert any(
            [i.op for i in wa.instructions] != [i.op for i in wb.instructions]
            for wa, wb in zip(a, b)
        )

    def test_warp_count_follows_spec(self):
        spec = KernelSpec("count", warps_per_sm=7, body_length=50)
        assert len(build_warps(spec, 0)) == 7
        assert len(build_warps(spec, 0, num_warps=3)) == 3

    def test_mix_respected_statistically(self):
        spec = KernelSpec(
            "mixy",
            mix={InstructionClass.LOAD: 0.5, InstructionClass.FALU: 0.5},
            body_length=4000,
        )
        warps = build_warps(spec, 1, num_warps=1)
        ops = [i.op for i in warps[0].instructions]
        load_fraction = ops.count(InstructionClass.LOAD) / len(ops)
        assert load_fraction == pytest.approx(0.5, abs=0.05)

    def test_jitter_varies_stream_length(self):
        spec = KernelSpec("jit", body_length=1000)
        warps = build_warps(spec, 2, jitter=0.2)
        lengths = {len(w.instructions) for w in warps}
        assert len(lengths) > 1

    def test_zero_jitter_uniform_lengths(self):
        spec = KernelSpec("uni", body_length=500)
        warps = build_warps(spec, 2, jitter=0.0)
        assert {len(w.instructions) for w in warps} == {500}

    def test_jitter_range_validated(self):
        spec = KernelSpec("jit")
        with pytest.raises(ValueError, match="jitter"):
            build_warps(spec, 0, jitter=1.0)

    def test_stores_and_branches_have_no_dest(self):
        spec = KernelSpec(
            "stores",
            mix={InstructionClass.STORE: 0.5, InstructionClass.BRANCH: 0.5},
            body_length=100,
        )
        warps = build_warps(spec, 3, num_warps=1)
        assert all(i.dest == -1 for i in warps[0].instructions)

    def test_phase_structure_boosts_memory(self):
        spec = KernelSpec(
            "phased",
            mix={InstructionClass.LOAD: 0.1, InstructionClass.FALU: 0.9},
            body_length=4000,
            phase_period=500,
            phase_memory_boost=3.0,
        )
        warps = build_warps(spec, 4, num_warps=1)
        ops = [i.op for i in warps[0].instructions]
        compute_phase = ops[:500]
        memory_phase = ops[500:1000]
        compute_loads = compute_phase.count(InstructionClass.LOAD)
        memory_loads = memory_phase.count(InstructionClass.LOAD)
        assert memory_loads > 3 * compute_loads
