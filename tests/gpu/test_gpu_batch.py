"""Tests for the lock-stepped GPU batch facade and ``step_into``.

``GPU.step_into(out)`` must be bit-identical to ``out[:] = gpu.step()``
— including around barrier-exempt changes, which exercise the lazy
exempt-mask refresh — and ``GPUBatch`` must keep B independent lanes
byte-equal to B serial GPUs.
"""

import numpy as np
import pytest

from repro.gpu import GPU, KernelSpec
from repro.gpu.batch import GPUBatch


def _gpu(seed, vectorized=True, body=250):
    return GPU(
        KernelSpec("t", body_length=body), seed=seed, jitter=0.05,
        vectorized=vectorized,
    )


class TestStepInto:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_matches_step(self, vectorized):
        a = _gpu(3, vectorized)
        b = _gpu(3, vectorized)
        out = np.empty(a.num_sms)
        for cycle in range(400):
            ref = a.step()
            assert np.array_equal(b.step_into(out), ref), cycle
        assert a.kernels_launched == b.kernels_launched
        assert a.kernel_launch_cycles == b.kernel_launch_cycles

    def test_exempt_mask_refresh_round_trip(self):
        """Setting then clearing barrier_exempt must not leave stale
        mask bits behind (the lazy refresh's dirty-flag contract)."""
        a = _gpu(7)
        b = _gpu(7)
        out = np.empty(a.num_sms)
        for cycle in range(600):
            if cycle == 150:
                a.barrier_exempt = {0, 1, 2, 3}
                b.barrier_exempt = {0, 1, 2, 3}
            if cycle == 300:
                a.barrier_exempt = set()
                b.barrier_exempt = set()
            assert np.array_equal(b.step_into(out), a.step()), cycle
        assert a.kernel_launch_cycles == b.kernel_launch_cycles


class TestGPUBatch:
    def test_lanes_match_serial_gpus(self):
        seeds = [1, 5, 9]
        serial = [_gpu(s) for s in seeds]
        batch = GPUBatch([_gpu(s) for s in seeds])
        out = np.empty((len(seeds), batch.num_sms))
        for cycle in range(350):
            batch.step_into(out)
            for i, gpu in enumerate(serial):
                assert np.array_equal(out[i], gpu.step()), (i, cycle)
        assert batch.total_instructions() == sum(
            g.total_instructions() for g in serial
        )
        assert batch.total_fake_instructions() == sum(
            g.total_fake_instructions() for g in serial
        )

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            GPUBatch([])

    def test_lane_access(self):
        gpus = [_gpu(1), _gpu(2)]
        batch = GPUBatch(gpus)
        assert len(batch) == 2
        assert batch[1] is gpus[1]
        assert list(batch) == gpus
