"""SPMD balance mechanics: the properties that make VS viable on GPUs.

These tests pin the modeling decisions behind Section III-A's premise
("all the cores execute the same code and experience very similar
microarchitectural events"):

* identical instruction streams across SMs under one stream seed;
* deterministic, access-site-keyed memory outcomes shared by all SMs;
* kernel-launch barriers bounding SM phase drift;
* jitter as the only per-SM divergence source.
"""

import numpy as np
import pytest

from repro.gpu import GPU, KernelSpec
from repro.gpu.kernels import build_warps
from repro.gpu.memory import MemorySystem


class TestSharedStreams:
    def test_same_seed_same_streams_across_sms(self):
        gpu = GPU(KernelSpec("t", body_length=100), seed=5)
        reference = [i.op for i in gpu.sms[0].warps[0].instructions]
        for sm in gpu.sms[1:]:
            assert [i.op for i in sm.warps[0].instructions] == reference

    def test_jitter_differs_across_sms(self):
        gpu = GPU(KernelSpec("t", body_length=200), seed=5, jitter=0.2)
        lengths = {len(sm.warps[0].instructions) for sm in gpu.sms}
        assert len(lengths) > 1

    def test_stream_cache_returns_equal_streams(self):
        spec = KernelSpec("cache_check", body_length=150)
        a = build_warps(spec, seed=9)
        b = build_warps(spec, seed=9)
        for wa, wb in zip(a, b):
            assert [i.op for i in wa.instructions] == [
                i.op for i in wb.instructions
            ]


class TestKeyedMemory:
    def test_same_key_same_outcome(self):
        m = MemorySystem(miss_ratio=0.5, seed=3)
        first = m.request(0, key=(1, 10, 0)) - 0
        second = m.request(1000, key=(1, 10, 0)) - 1000
        assert first == second

    def test_different_keys_vary(self):
        m = MemorySystem(miss_ratio=0.5, seed=3)
        latencies = {
            m.request(0, key=(w, pc, 0)) for w in range(8) for pc in range(8)
        }
        assert len(latencies) > 1

    def test_key_outcome_statistics_match_ratio(self):
        m = MemorySystem(miss_ratio=0.3, seed=4)
        for k in range(4000):
            m.request(0, key=(k, k * 7, 0))
        assert m.observed_miss_ratio == pytest.approx(0.3, abs=0.03)

    def test_two_sms_same_sites_same_events(self):
        """The SPMD property end to end: two SMs running the same code
        against the shared memory system see identical hit/miss events."""
        m = MemorySystem(miss_ratio=0.4, seed=5)
        outcomes_a = [
            m.request(0, key=(w, pc, 0)) for w in range(4) for pc in range(16)
        ]
        outcomes_b = [
            m.request(0, key=(w, pc, 0)) for w in range(4) for pc in range(16)
        ]
        # Latency class (beyond queueing) is identical site by site.
        classes_a = [o % 1000 >= 100 for o in outcomes_a]
        classes_b = [o % 1000 >= 100 for o in outcomes_b]
        assert classes_a == classes_b


class TestKernelBarrier:
    def test_all_sms_launch_together(self):
        spec = KernelSpec("short", body_length=30, warps_per_sm=2)
        gpu = GPU(spec, seed=6)
        gpu.run(4000)
        assert gpu.kernels_launched >= 2
        # Every SM is on the same kernel generation.
        generations = {sm._kernel_generation for sm in gpu.sms}
        assert len(generations) == 1

    def test_barrier_exempt_sm_does_not_block(self):
        spec = KernelSpec("short", body_length=30, warps_per_sm=2)
        gpu = GPU(spec, seed=6)
        gpu.barrier_exempt = {0}
        gpu.sms[0].set_issue_width(0.0)  # SM 0 never finishes
        gpu.run(4000)
        assert gpu.kernels_launched >= 2

    def test_blocked_barrier_without_exemption(self):
        spec = KernelSpec("short", body_length=30, warps_per_sm=2)
        gpu = GPU(spec, seed=6)
        gpu.sms[0].set_issue_width(0.0)
        gpu.run(2000)
        assert gpu.kernels_launched == 1  # stuck behind SM 0

    def test_launch_cycles_recorded(self):
        spec = KernelSpec("short", body_length=30, warps_per_sm=2)
        gpu = GPU(spec, seed=6)
        gpu.run(4000)
        launches = gpu.kernel_launch_cycles
        assert launches[0] == 0
        assert all(b > a for a, b in zip(launches, launches[1:]))


class TestDIWSWindowSemantics:
    def test_budget_refreshes_each_window(self):
        from repro.gpu.memory import MemorySystem
        from repro.gpu.sm import DIWS_WINDOW, StreamingMultiprocessor

        spec = KernelSpec("t", body_length=400, dependence=0.0)
        sm = StreamingMultiprocessor(
            0, spec, MemorySystem(miss_ratio=0.0, seed=7), seed=7
        )
        sm.set_issue_width(1.5)
        for cycle in range(10 * DIWS_WINDOW):
            sm.step(cycle)
        per_cycle = sm.stats.instructions_issued / sm.stats.cycles
        # Fractional width realized within the window mechanism (window
        # re-arming can overshoot by a fraction of a slot per window).
        assert 1.2 < per_cycle <= 1.6
