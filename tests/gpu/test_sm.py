"""Tests for the streaming multiprocessor model."""

import numpy as np
import pytest

from repro.gpu.isa import ExecUnit, InstructionClass
from repro.gpu.kernels import KernelSpec
from repro.gpu.memory import MemorySystem
from repro.gpu.sm import DIWS_WINDOW, StreamingMultiprocessor


def make_sm(seed=0, kernel=None, rearm=True, **kernel_kwargs):
    spec = kernel or KernelSpec("t", body_length=600, **kernel_kwargs)
    return StreamingMultiprocessor(
        0, spec, MemorySystem(miss_ratio=0.2, seed=seed), seed=seed, rearm=rearm
    )


def run(sm, cycles, start=0):
    powers = np.empty(cycles)
    for k in range(cycles):
        powers[k] = sm.step(start + k)
    return powers


class TestExecution:
    def test_issue_rate_in_paper_band(self):
        sm = make_sm(seed=1)
        run(sm, 1500)
        assert 0.7 <= sm.stats.issue_rate <= 1.9

    def test_power_positive_and_below_peak(self):
        sm = make_sm(seed=2)
        powers = run(sm, 800)
        assert np.all(powers > 0)
        # Energy smearing can momentarily stack short-latency shares a
        # little above the instantaneous dual-issue peak.
        assert np.all(powers < sm.power_model.peak_power_w * 1.3)
        assert powers.mean() < sm.power_model.peak_power_w

    def test_kernel_rearms_for_indefinite_stream(self):
        spec = KernelSpec("short", body_length=40, warps_per_sm=2)
        sm = make_sm(seed=3, kernel=spec)
        run(sm, 3000)
        assert sm.stats.kernels_completed >= 1

    def test_no_rearm_goes_idle(self):
        spec = KernelSpec("short", body_length=30, warps_per_sm=2)
        sm = make_sm(seed=3, kernel=spec, rearm=False)
        run(sm, 4000)
        assert sm.kernel_done
        # Idle power = leakage + clock base only.
        idle = sm.step(4001)
        assert idle < 0.4 * sm.power_model.peak_power_w

    def test_deterministic_across_runs(self):
        a = run(make_sm(seed=4), 500)
        b = run(make_sm(seed=4), 500)
        assert np.array_equal(a, b)


class TestDIWS:
    def test_width_clamped(self):
        sm = make_sm()
        sm.set_issue_width(5.0)
        assert sm.issue_width_setting == 2.0
        sm.set_issue_width(-1.0)
        assert sm.issue_width_setting == 0.0

    def test_reduced_width_reduces_power(self):
        sm_full = make_sm(seed=5)
        sm_half = make_sm(seed=5)
        sm_half.set_issue_width(0.5)
        p_full = run(sm_full, 1200).mean()
        p_half = run(sm_half, 1200).mean()
        assert p_half < p_full

    def test_zero_width_stops_issue(self):
        sm = make_sm(seed=6)
        run(sm, 200)
        issued_before = sm.stats.instructions_issued
        sm.set_issue_width(0.0)
        run(sm, 200 + DIWS_WINDOW, start=200)  # flush the current window
        issued_in_window = sm.stats.instructions_issued - issued_before
        # Only the residual budget of the in-flight window can issue.
        assert issued_in_window <= 2 * DIWS_WINDOW
        issued_mid = sm.stats.instructions_issued
        run(sm, 200, start=400 + DIWS_WINDOW)
        assert sm.stats.instructions_issued == issued_mid

    def test_fractional_width_between_integers(self):
        counts = {}
        for width in (1.0, 1.5, 2.0):
            sm = make_sm(seed=7, dependence=0.0)
            sm.set_issue_width(width)
            run(sm, 1500)
            counts[width] = sm.stats.instructions_issued
        assert counts[1.0] < counts[1.5] <= counts[2.0]

    def test_throttling_accumulates_ready_warps(self):
        """The paper's key DIWS property: throughput loss is sub-linear
        because throttled warps bank readiness for later cycles."""
        sm_full = make_sm(seed=8)
        sm_half = make_sm(seed=8)
        sm_half.set_issue_width(1.0)
        run(sm_full, 2500)
        run(sm_half, 2500)
        ratio = (
            sm_half.stats.instructions_issued / sm_full.stats.instructions_issued
        )
        # Width halved but throughput keeps well above half.
        assert ratio > 0.7


class TestFII:
    def test_rate_clamped(self):
        sm = make_sm()
        sm.set_fake_rate(9.0)
        assert sm.fake_rate == 2.0

    def test_fakes_increase_power(self):
        base = make_sm(seed=9)
        boosted = make_sm(seed=9)
        boosted.set_fake_rate(1.0)
        p_base = run(base, 1000).mean()
        p_boost = run(boosted, 1000).mean()
        assert p_boost > p_base + 0.5

    def test_fake_count_tracks_rate(self):
        sm = make_sm(seed=10)
        sm.set_issue_width(1.0)  # leave slack for fakes
        sm.set_fake_rate(0.5)
        run(sm, 2000)
        per_cycle = sm.stats.fake_instructions / sm.stats.cycles
        assert 0.3 < per_cycle <= 0.5

    def test_fakes_limited_by_issue_slack(self):
        """No extra instruction can inject when both slots hold real work."""
        sm = make_sm(seed=11, dependence=0.0)
        sm.set_fake_rate(2.0)
        run(sm, 1000)
        total = sm.stats.instructions_issued + sm.stats.fake_instructions
        assert total <= 2 * sm.stats.active_cycles


class TestDFSAndGating:
    def test_frequency_scale_validated(self):
        sm = make_sm()
        with pytest.raises(ValueError):
            sm.set_frequency_scale(0.0)

    def test_clock_masking_slows_execution(self):
        full = make_sm(seed=12)
        half = make_sm(seed=12)
        half.set_frequency_scale(0.5)
        run(full, 1000)
        run(half, 1000)
        assert half.stats.active_cycles == pytest.approx(500, abs=2)
        assert half.stats.instructions_issued < full.stats.instructions_issued

    def test_masked_cycles_draw_leakage_only(self):
        sm = make_sm(seed=13)
        sm.set_frequency_scale(0.5)
        powers = run(sm, 100)
        leak = sm.power_model.leakage_w()
        assert np.isclose(powers.min(), leak)

    def test_gated_unit_blocks_issue_of_its_class(self):
        spec = KernelSpec(
            "sfu_only", mix={InstructionClass.SFU: 1.0}, body_length=100
        )
        sm = make_sm(kernel=spec, seed=14)
        sm.gate_unit(ExecUnit.SFU)
        run(sm, 200)
        assert sm.stats.instructions_issued == 0

    def test_ungating_has_wakeup_latency(self):
        spec = KernelSpec(
            "sfu_only", mix={InstructionClass.SFU: 1.0}, body_length=100,
            dependence=0.0,
        )
        sm = make_sm(kernel=spec, seed=15)
        sm.gate_unit(ExecUnit.SFU)
        run(sm, 50)
        sm.ungate_unit(ExecUnit.SFU, cycle=50)
        run(sm, 2, start=50)
        assert sm.stats.instructions_issued == 0  # still waking
        run(sm, 20, start=52)
        assert sm.stats.instructions_issued > 0

    def test_gating_reduces_leakage_component(self):
        spec = KernelSpec(
            "alu_only", mix={InstructionClass.FALU: 1.0}, body_length=400
        )
        plain = make_sm(kernel=spec, seed=16)
        gated = make_sm(kernel=spec, seed=16)
        gated.gate_unit(ExecUnit.SFU)
        gated.gate_unit(ExecUnit.LSU)
        p_plain = run(plain, 500).mean()
        p_gated = run(gated, 500).mean()
        assert p_gated < p_plain

    def test_idle_counters_track_unused_units(self):
        spec = KernelSpec(
            "alu_only", mix={InstructionClass.FALU: 1.0}, body_length=400
        )
        sm = make_sm(kernel=spec, seed=17)
        run(sm, 300)
        assert sm.unit_idle_cycles[ExecUnit.SFU] > 100
        assert sm.unit_idle_cycles[ExecUnit.ALU] < 10
