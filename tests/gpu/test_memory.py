"""Tests for the shared memory system model."""

import pytest

from repro.gpu.memory import MemorySystem, MemoryTimings


class TestTimings:
    def test_defaults_valid(self):
        MemoryTimings()

    def test_rejects_bad_latencies(self):
        with pytest.raises(ValueError):
            MemoryTimings(l2_hit_cycles=0)
        with pytest.raises(ValueError):
            MemoryTimings(dram_cycles=-1)
        with pytest.raises(ValueError):
            MemoryTimings(requests_per_cycle=0)


class TestLatency:
    def test_all_hits_return_l2_latency(self):
        m = MemorySystem(miss_ratio=0.0, seed=1)
        done = m.request(100)
        assert done == 100 + m.timings.l2_hit_cycles

    def test_all_misses_return_dram_latency(self):
        m = MemorySystem(miss_ratio=1.0, seed=1)
        done = m.request(100)
        assert done == 100 + m.timings.dram_cycles

    def test_miss_ratio_statistics(self):
        m = MemorySystem(miss_ratio=0.25, seed=2)
        for _ in range(4000):
            m.request(0)
        assert m.observed_miss_ratio == pytest.approx(0.25, abs=0.03)

    def test_invalid_miss_ratio_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(miss_ratio=1.5)


class TestBandwidth:
    def test_burst_queues_beyond_bandwidth(self):
        m = MemorySystem(miss_ratio=0.0, seed=3)
        per_cycle = m.timings.requests_per_cycle
        completions = [m.request(0) for _ in range(per_cycle * 10)]
        # The last request of the burst waits ~9 extra cycles for service.
        assert max(completions) >= min(completions) + 9

    def test_spread_requests_not_delayed(self):
        m = MemorySystem(miss_ratio=0.0, seed=4)
        l2 = m.timings.l2_hit_cycles
        for cycle in range(0, 100, 10):
            assert m.request(cycle) == cycle + l2

    def test_reset_statistics(self):
        m = MemorySystem(miss_ratio=0.5, seed=5)
        m.request(0)
        m.reset_statistics()
        assert m.requests_served == 0
        assert m.observed_miss_ratio == 0.0
