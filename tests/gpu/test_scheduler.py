"""Tests for the GTO and gating-aware warp schedulers."""

from repro.gpu.isa import ExecUnit, Instruction, InstructionClass
from repro.gpu.scheduler import GatingAwareScheduler, GTOScheduler
from repro.gpu.warp import Warp


def alu_warp(warp_id, n=4):
    return Warp(warp_id, [Instruction(InstructionClass.FALU, -1) for _ in range(n)])


def lsu_warp(warp_id, n=4):
    return Warp(warp_id, [Instruction(InstructionClass.LOAD, -1) for _ in range(n)])


class TestGTO:
    def test_returns_none_when_no_warp_ready(self):
        s = GTOScheduler()
        done = Warp(0, [])
        assert s.select([done], 0) is None

    def test_greedy_sticks_with_last_issued(self):
        s = GTOScheduler()
        warps = [alu_warp(0), alu_warp(1)]
        first = s.select(warps, 0)
        first.advance(0)
        s.issued(first)
        second = s.select(warps, 1)
        assert second.warp_id == first.warp_id

    def test_falls_back_to_oldest_when_greedy_unready(self):
        s = GTOScheduler()
        warps = [alu_warp(0, n=1), alu_warp(1, n=4)]
        first = s.select(warps, 0)
        assert first.warp_id == 0  # oldest = least progressed, lowest id
        first.advance(0)
        s.issued(first)
        # Warp 0 is now done; GTO must move on.
        second = s.select(warps, 1)
        assert second.warp_id == 1

    def test_oldest_means_least_progressed(self):
        s = GTOScheduler()
        w0, w1 = alu_warp(0), alu_warp(1)
        w0.advance(0)
        w0.advance(1)
        chosen = s.select([w0, w1], 2)
        assert chosen.warp_id == 1

    def test_reset_clears_greedy_state(self):
        s = GTOScheduler()
        warps = [alu_warp(0), alu_warp(1)]
        s.issued(warps[1])
        s.reset()
        assert s.select(warps, 0).warp_id == 0


class TestGatingAware:
    def test_prefers_active_unit(self):
        s = GatingAwareScheduler()
        s.set_active_units({ExecUnit.LSU})
        warps = [alu_warp(0), lsu_warp(1)]
        chosen = s.select(warps, 0)
        assert chosen.warp_id == 1  # LSU warp wins despite higher id

    def test_falls_back_when_no_preferred_ready(self):
        s = GatingAwareScheduler()
        s.set_active_units({ExecUnit.SFU})
        warps = [alu_warp(0)]
        chosen = s.select(warps, 0)
        assert chosen.warp_id == 0

    def test_all_units_active_behaves_like_gto(self):
        gates = GatingAwareScheduler()
        gto = GTOScheduler()
        warps_a = [alu_warp(0), lsu_warp(1)]
        warps_b = [alu_warp(0), lsu_warp(1)]
        assert gates.select(warps_a, 0).warp_id == gto.select(warps_b, 0).warp_id
