"""Tests for the SM power model."""

import pytest

from repro.config import PowerConfig
from repro.gpu.isa import ExecUnit, Instruction, InstructionClass
from repro.gpu.power import (
    LEAKAGE_SHARE,
    UNGATEABLE_LEAKAGE_SHARE,
    SMPowerModel,
)


@pytest.fixture
def model():
    return SMPowerModel()


def falu():
    return Instruction(InstructionClass.FALU)


class TestLeakage:
    def test_full_leakage_matches_config(self, model):
        assert model.leakage_w() == pytest.approx(
            PowerConfig().sm_leakage_power_w
        )

    def test_gating_reduces_leakage_by_unit_share(self, model):
        full = model.leakage_w()
        gated = model.leakage_w([ExecUnit.ALU])
        assert gated == pytest.approx(full * (1 - LEAKAGE_SHARE[ExecUnit.ALU]))

    def test_gating_all_units_leaves_ungateable_floor(self, model):
        gated = model.leakage_w(list(ExecUnit))
        assert gated == pytest.approx(model.leakage_w() * UNGATEABLE_LEAKAGE_SHARE)

    def test_leakage_shares_sum_below_one(self):
        assert 0 < UNGATEABLE_LEAKAGE_SHARE < 1


class TestCyclePower:
    def test_idle_cycle_draws_leakage_plus_base(self, model):
        p = model.cycle_power_w([])
        assert p > model.leakage_w()

    def test_power_grows_with_issued_instructions(self, model):
        p0 = model.cycle_power_w([])
        p1 = model.cycle_power_w([falu()])
        p2 = model.cycle_power_w([falu(), falu()])
        assert p0 < p1 < p2

    def test_frequency_scaling_reduces_dynamic_only(self, model):
        full = model.cycle_power_w([falu()], frequency_scale=1.0)
        half = model.cycle_power_w([falu()], frequency_scale=0.5)
        leak = model.leakage_w()
        assert half - leak == pytest.approx((full - leak) / 2)

    def test_zero_frequency_is_pure_leakage(self, model):
        assert model.cycle_power_w([], frequency_scale=0.0) == pytest.approx(
            model.leakage_w()
        )

    def test_negative_frequency_rejected(self, model):
        with pytest.raises(ValueError):
            model.cycle_power_w([], frequency_scale=-0.1)

    def test_peak_power_near_config_envelope(self, model):
        # The dual-issue hot loop must land near the 8 W per-SM peak.
        assert model.peak_power_w == pytest.approx(
            PowerConfig().sm_peak_power_w, rel=0.1
        )
