"""Equivalence contract of the vectorized GPU engine (property-based).

The struct-of-arrays engine (``repro.gpu.engine``) must be
*bit-identical* to the per-object reference SMs for the same seed —
power traces, statistics, kernel-launch accounting and shared-memory
counters — under any kernel shape, actuation schedule, DFS setting,
power gating sequence and fault scenario.  These tests drive both
implementations side by side through randomized schedules (hypothesis)
and through each canned cross-layer fault scenario.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.faults.scenarios import CANNED_SCENARIOS
from repro.gpu.engine import VectorizedGPUEngine, _resolve_backend
from repro.gpu.gpu import GPU
from repro.gpu.isa import ExecUnit, InstructionClass
from repro.gpu.kernels import KernelSpec
from repro.sim.cosim import CosimConfig, run_cosim

STAT_FIELDS = (
    "cycles",
    "active_cycles",
    "instructions_issued",
    "fake_instructions",
    "issue_stall_cycles",
    "kernels_completed",
)


def _assert_equivalent(ref: GPU, vec: GPU, cycles: int, actuate=None) -> None:
    for cycle in range(cycles):
        if actuate is not None:
            actuate(ref, cycle)
            actuate(vec, cycle)
        pr = ref.step()
        pv = vec.step()
        assert np.array_equal(pr, pv), f"power trace diverged at cycle {cycle}"
    for ref_sm, vec_sm in zip(ref.sms, vec.sms):
        for field in STAT_FIELDS:
            assert getattr(ref_sm.stats, field) == getattr(vec_sm.stats, field)
    assert ref.kernels_launched == vec.kernels_launched
    assert ref.kernel_launch_cycles == vec.kernel_launch_cycles
    assert ref.total_instructions() == vec.total_instructions()
    assert ref.total_fake_instructions() == vec.total_fake_instructions()
    assert ref.memory.requests_served == vec.memory.requests_served
    assert ref.memory.misses == vec.memory.misses


kernel_specs = st.builds(
    KernelSpec,
    name=st.just("prop"),
    mix=st.fixed_dictionaries(
        {
            InstructionClass.FALU: st.floats(0.05, 1.0),
            InstructionClass.IALU: st.floats(0.05, 1.0),
            InstructionClass.SFU: st.floats(0.0, 0.5),
            InstructionClass.LOAD: st.floats(0.0, 0.6),
            InstructionClass.STORE: st.floats(0.0, 0.3),
        }
    ),
    dependence=st.floats(0.0, 1.0),
    warps_per_sm=st.integers(1, 12),
    body_length=st.integers(8, 160),
    phase_period=st.sampled_from([0, 40, 150]),
    phase_memory_boost=st.floats(0.0, 1.5),
)


class TestRandomizedEquivalence:
    @given(
        spec=kernel_specs,
        seed=st.integers(0, 2**31),
        jitter=st.sampled_from([0.0, 0.1, 0.25]),
        miss=st.floats(0.0, 0.9),
        cycles=st.integers(60, 350),
    )
    @settings(max_examples=20, deadline=None)
    def test_kernel_space(self, spec, seed, jitter, miss, cycles):
        ref = GPU(spec, seed=seed, miss_ratio=miss, jitter=jitter,
                  vectorized=False)
        vec = GPU(spec, seed=seed, miss_ratio=miss, jitter=jitter,
                  vectorized=True)
        _assert_equivalent(ref, vec, cycles)

    @given(
        seed=st.integers(0, 2**31),
        sched_seed=st.integers(0, 2**31),
        cycles=st.integers(150, 400),
    )
    @settings(max_examples=15, deadline=None)
    def test_actuation_dfs_and_gating(self, seed, sched_seed, cycles):
        """Random per-cycle DIWS/FII/DFS commands and gating flips."""
        spec = KernelSpec("sched", body_length=120, warps_per_sm=6)
        rng = np.random.default_rng(sched_seed)
        events = {
            int(c): (
                rng.uniform(0.0, 2.4, 16),
                rng.uniform(0.0, 2.0, 16),
                rng.uniform(0.05, 1.0, 16),
                int(rng.integers(0, 16)),
                ExecUnit(list(ExecUnit)[int(rng.integers(0, 3))]),
                bool(rng.integers(0, 2)),
            )
            for c in rng.integers(0, cycles, 12)
        }

        def actuate(gpu, cycle):
            if cycle not in events:
                return
            widths, fakes, freqs, sm, unit, gate = events[cycle]
            gpu.set_issue_widths(widths)
            gpu.set_fake_rates(fakes)
            gpu.set_frequency_scales(freqs)
            if gate:
                gpu.sms[sm].gate_unit(unit)
            else:
                gpu.sms[sm].ungate_unit(unit, cycle)

        ref = GPU(spec, seed=seed, miss_ratio=0.3, vectorized=False)
        vec = GPU(spec, seed=seed, miss_ratio=0.3, vectorized=True)
        _assert_equivalent(ref, vec, cycles, actuate)


class TestFaultScenarioEquivalence:
    """Whole-loop equivalence under each canned cross-layer fault."""

    @pytest.mark.parametrize("scenario", sorted(CANNED_SCENARIOS))
    def test_cosim_fault_scenario(self, scenario):
        results = []
        for vectorized in (True, False):
            config = CosimConfig(
                cycles=900,
                warmup_cycles=100,
                faults=CANNED_SCENARIOS[scenario](),
                vectorized_gpu=vectorized,
            )
            results.append(run_cosim("hotspot", config=config))
        vec, ref = results
        assert np.array_equal(vec.power_trace.data, ref.power_trace.data)
        assert np.array_equal(vec.sm_voltages, ref.sm_voltages)
        assert vec.instructions == ref.instructions
        assert vec.fake_instructions == ref.fake_instructions
        assert vec.throttled_cycles == ref.throttled_cycles
        assert vec.kernels_completed == ref.kernels_completed


class TestBackends:
    def test_env_override_selects_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_GPU_BACKEND", "numpy")
        assert _resolve_backend("auto", 12) == "numpy"
        gpu = GPU(KernelSpec("np-backend", body_length=50), vectorized=True)
        assert gpu.engine.backend == "numpy"

    def test_numpy_and_c_backends_agree(self, monkeypatch):
        from repro.gpu._cbuild import load_engine_lib

        if load_engine_lib() is None:
            pytest.skip("no C compiler available")
        spec = KernelSpec("xback", body_length=90, warps_per_sm=5)
        traces = {}
        for backend in ("numpy", "c"):
            monkeypatch.setenv("REPRO_GPU_BACKEND", backend)
            gpu = GPU(spec, seed=5, miss_ratio=0.4, jitter=0.1,
                      vectorized=True)
            traces[backend] = gpu.run(800)
        assert np.array_equal(traces["numpy"], traces["c"])

    def test_explicit_c_unavailable_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_GPU_BACKEND", raising=False)
        monkeypatch.setattr(
            "repro.gpu.engine.load_engine_lib", lambda: None
        )
        with pytest.raises(RuntimeError):
            _resolve_backend("c", 12)
        assert _resolve_backend("auto", 12) == "numpy"


class TestEngineSurface:
    def test_setter_prefix_semantics_on_bad_frequency(self):
        """A bad frequency scale raises after applying earlier SMs
        (the reference's zip-iteration semantics)."""
        gpu = GPU(KernelSpec("prefix", body_length=40), vectorized=True)
        scales = np.full(16, 0.5)
        scales[10] = -1.0
        with pytest.raises(ValueError):
            gpu.set_frequency_scales(scales)
        assert gpu.sms[9].frequency_scale == 0.5
        assert gpu.sms[11].frequency_scale == 1.0

    def test_nan_issue_width_clamps_to_zero(self):
        ref = GPU(KernelSpec("nan", body_length=40), vectorized=False)
        vec = GPU(KernelSpec("nan", body_length=40), vectorized=True)
        for gpu in (ref, vec):
            gpu.set_issue_widths(np.full(16, np.nan))
        assert (
            ref.sms[0].issue_width_setting
            == vec.sms[0].issue_width_setting
            == 0.0
        )

    def test_gated_units_view(self):
        gpu = GPU(KernelSpec("gate", body_length=40), vectorized=True)
        gpu.sms[2].gate_unit(ExecUnit.SFU)
        assert gpu.sms[2].gated_units == {ExecUnit.SFU}
        gpu.sms[2].ungate_unit(ExecUnit.SFU, 10)
        assert gpu.sms[2].gated_units == set()

    def test_totals_are_o1_counters(self):
        gpu = GPU(KernelSpec("tot", body_length=60), vectorized=True)
        gpu.run(200)
        engine = gpu.engine
        assert gpu.total_instructions() == int(engine.stat_instructions.sum())
        assert gpu.total_fake_instructions() == int(engine.stat_fakes.sum())
