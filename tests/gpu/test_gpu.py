"""Tests for the whole-GPU model."""

import numpy as np
import pytest

from repro.config import StackConfig, SystemConfig
from repro.gpu import GPU, KernelSpec
from repro.pdn.efficiency import imbalance_fraction


@pytest.fixture(scope="module")
def short_trace():
    gpu = GPU(KernelSpec("t", body_length=800), seed=1, jitter=0.05)
    return gpu, gpu.run(1500)


class TestStepping:
    def test_trace_shape(self, short_trace):
        _, trace = short_trace
        assert trace.shape == (1500, 16)

    def test_rejects_nonpositive_cycles(self):
        gpu = GPU(KernelSpec("t"), seed=0)
        with pytest.raises(ValueError):
            gpu.run(0)

    def test_deterministic(self):
        a = GPU(KernelSpec("t", body_length=300), seed=3).run(400)
        b = GPU(KernelSpec("t", body_length=300), seed=3).run(400)
        assert np.array_equal(a, b)

    def test_cycle_counter_advances(self):
        gpu = GPU(KernelSpec("t"), seed=0)
        gpu.run(10)
        assert gpu.cycle == 10


class TestSPMDBalance:
    """The property that makes GPUs the right VS platform (Section III-A)."""

    def test_per_sm_mean_powers_clustered(self, short_trace):
        _, trace = short_trace
        means = trace.mean(axis=0)
        assert means.std() / means.mean() < 0.12

    def test_imbalance_fraction_below_20_percent(self, short_trace):
        """Paper: shuffled power 'usually less than 20% of layer power'."""
        _, trace = short_trace
        assert imbalance_fraction(trace) < 0.20

    def test_issue_rates_in_survey_band(self, short_trace):
        gpu, _ = short_trace
        rates = gpu.issue_rates()
        assert np.all(rates > 0.6)
        assert np.all(rates < 2.0)


class TestActuationFanOut:
    def test_issue_width_fanout(self):
        gpu = GPU(KernelSpec("t"), seed=4)
        gpu.set_issue_widths([1.0] * 16)
        assert all(sm.issue_width_setting == 1.0 for sm in gpu.sms)

    def test_fake_rate_fanout(self):
        gpu = GPU(KernelSpec("t"), seed=4)
        gpu.set_fake_rates([0.5] * 16)
        assert all(sm.fake_rate == 0.5 for sm in gpu.sms)

    def test_frequency_fanout_per_sm(self):
        gpu = GPU(KernelSpec("t"), seed=4)
        scales = [1.0] * 15 + [0.5]
        gpu.set_frequency_scales(scales)
        assert gpu.sms[15].frequency_scale == 0.5
        assert gpu.sms[0].frequency_scale == 1.0


class TestAggregation:
    def test_layer_powers_sum_columns(self):
        gpu = GPU(KernelSpec("t"), seed=5)
        per_sm = np.arange(16.0)
        layers = gpu.layer_powers(per_sm)
        assert layers.shape == (4,)
        assert layers[0] == pytest.approx(0 + 1 + 2 + 3)
        assert layers[3] == pytest.approx(12 + 13 + 14 + 15)

    def test_total_instruction_count_positive(self, short_trace):
        gpu, _ = short_trace
        assert gpu.total_instructions() > 1000
        assert gpu.total_fake_instructions() == 0
