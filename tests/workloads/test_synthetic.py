"""Tests for synthetic worst-case current generators."""

import numpy as np
import pytest

from repro.config import PowerConfig, StackConfig
from repro.workloads.synthetic import (
    layer_shutoff_currents,
    resonance_currents,
    step_currents,
    worst_case_residual_currents,
)

STACK = StackConfig()
POWER = PowerConfig()


class TestLayerShutoff:
    def test_before_event_all_balanced(self):
        f = layer_shutoff_currents(shutoff_time_s=3e-6, activity=0.8)
        currents = f(1e-6)
        assert currents.shape == (16,)
        assert np.allclose(currents, currents[0])

    def test_after_event_layer_drops_to_leakage(self):
        f = layer_shutoff_currents(shutoff_time_s=3e-6, layer=3, activity=0.8)
        currents = f(4e-6)
        leak = POWER.sm_leakage_power_w / STACK.sm_voltage
        for sm in STACK.sms_in_layer(3):
            assert currents[sm] == pytest.approx(leak)
        for sm in STACK.sms_in_layer(0):
            assert currents[sm] > leak

    def test_recovery(self):
        f = layer_shutoff_currents(3e-6, recovery_time_s=5e-6)
        assert np.allclose(f(6e-6), f(1e-6))

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            layer_shutoff_currents(-1.0)

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            layer_shutoff_currents(1e-6, activity=1.5)


class TestStep:
    def test_levels(self):
        f = step_currents(1e-6, before_activity=0.2, after_activity=1.0)
        assert f(0.0).mean() < f(2e-6).mean()

    def test_step_is_global(self):
        f = step_currents(1e-6)
        after = f(2e-6)
        assert np.allclose(after, after[0])


class TestResonance:
    def test_square_wave_period(self):
        f = resonance_currents(50e6)  # 20 ns period
        high = f(1e-9)
        low = f(11e-9)
        assert high.mean() > low.mean()
        assert np.allclose(f(21e-9), high)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            resonance_currents(0.0)


class TestWorstResidual:
    def test_pattern_zero_sum_within_column(self):
        f = worst_case_residual_currents(10e6, sm=0, amplitude_a=2.0)
        base = worst_case_residual_currents(10e6, sm=0, amplitude_a=0.0)
        delta = f(1e-9) - base(1e-9)
        # The residual adds zero net current to the column.
        assert delta.sum() == pytest.approx(0.0, abs=1e-9)
        assert delta[0] == pytest.approx(2.0)

    def test_off_phase_is_balanced_baseline(self):
        f = worst_case_residual_currents(10e6, sm=0, amplitude_a=2.0)
        off = f(60e-9)  # second half of the 100 ns period
        assert np.allclose(off, off[0])

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            worst_case_residual_currents(1e6, amplitude_a=-1.0)
