"""Tests for the benchmark registry and its paper-calibrated behaviour."""

import numpy as np
import pytest

from repro.gpu import GPU
from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    get_benchmark,
    list_benchmarks,
)


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 12

    def test_six_per_suite(self):
        assert len(list_benchmarks("rodinia")) == 6
        assert len(list_benchmarks("cuda_sdk")) == 6

    def test_paper_names_present(self):
        expected = {
            "backprop", "bfs", "heartwall", "hotspot", "pathfinder", "srad",
            "blackscholes", "scalarprod", "sortingnet", "simpleface",
            "fastwalsh", "simpleatomic",
        }
        assert set(BENCHMARK_NAMES) == expected

    def test_lookup_case_insensitive(self):
        assert get_benchmark("BACKPROP").name == "backprop"

    def test_paper_aliases(self):
        # The paper's figures label srad as "sard" and backprop as "BACKP".
        assert get_benchmark("sard").name == "srad"
        assert get_benchmark("BACKP").name == "backprop"

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            get_benchmark("doom")

    def test_kernel_names_match(self):
        for spec in list_benchmarks():
            assert spec.kernel.name == spec.name


class TestCalibration:
    """Cross-benchmark behaviour targets from the paper."""

    def test_backprop_more_jittery_than_heartwall(self):
        # Fig. 17: backprop worst imbalance, heartwall best uniformity.
        assert get_benchmark("backprop").jitter > 3 * get_benchmark("heartwall").jitter

    def test_outliers_have_phase_structure(self):
        # Fig. 11 outliers show strong phase transitions.
        for name in ("pathfinder", "fastwalsh", "simpleatomic"):
            assert get_benchmark(name).kernel.phase_period > 0

    def test_bfs_is_memory_bound(self):
        assert get_benchmark("bfs").miss_ratio > 0.5

    def test_blackscholes_uses_sfu(self):
        from repro.gpu.isa import InstructionClass

        mix = get_benchmark("blackscholes").kernel.mix
        assert mix.get(InstructionClass.SFU, 0) >= 0.25

    @pytest.mark.parametrize("name", ["heartwall", "bfs", "backprop"])
    def test_issue_rates_in_band(self, name):
        spec = get_benchmark(name)
        gpu = GPU(spec.kernel, seed=1, miss_ratio=spec.miss_ratio,
                  jitter=spec.jitter)
        gpu.run(1200)
        rates = gpu.issue_rates()
        assert rates.mean() > 0.5
        assert rates.mean() < 2.0
