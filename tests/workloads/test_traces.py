"""Tests for the PowerTrace container."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.gpu import GPU, KernelSpec
from repro.workloads.traces import PowerTrace, capture_trace


@pytest.fixture
def trace():
    rng = np.random.default_rng(3)
    return PowerTrace(rng.uniform(2.0, 6.0, (100, 16)), name="rand")


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            PowerTrace(np.ones(16))

    def test_rejects_negative_power(self):
        data = np.ones((4, 16))
        data[2, 3] = -0.1
        with pytest.raises(ValueError, match="negative"):
            PowerTrace(data)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError, match="frequency"):
            PowerTrace(np.ones((4, 16)), frequency_hz=0.0)


class TestProperties:
    def test_shape_accessors(self, trace):
        assert trace.num_cycles == 100
        assert trace.num_sms == 16
        assert trace.duration_s == pytest.approx(100 / 700e6)
        assert trace.dt == pytest.approx(1 / 700e6)

    def test_total_power_sums_sms(self, trace):
        assert np.allclose(trace.total_power, trace.data.sum(axis=1))

    def test_layer_powers_shape(self, trace):
        layers = trace.layer_powers()
        assert layers.shape == (100, 4)
        assert np.allclose(layers.sum(axis=1), trace.total_power)

    def test_layer_powers_validates_stack(self, trace):
        with pytest.raises(ValueError, match="SMs"):
            trace.layer_powers(StackConfig(num_layers=2, num_columns=2))

    def test_sm_currents(self, trace):
        currents = trace.sm_currents(sm_voltage=2.0)
        assert np.allclose(currents, trace.data / 2.0)
        with pytest.raises(ValueError):
            trace.sm_currents(0.0)

    def test_window(self, trace):
        sub = trace.window(10, 20)
        assert sub.num_cycles == 10
        assert np.array_equal(sub.data, trace.data[10:20])

    def test_window_validation(self, trace):
        with pytest.raises(ValueError):
            trace.window(20, 10)

    def test_imbalance_consistent_with_shuffle(self, trace):
        frac = trace.imbalance_fraction()
        assert frac == pytest.approx(
            trace.shuffle_power_w() / trace.mean_power_w, rel=1e-9
        )


class TestSerialization:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = PowerTrace.load(path)
        assert loaded.name == trace.name
        assert loaded.frequency_hz == trace.frequency_hz
        assert np.array_equal(loaded.data, trace.data)


class TestCapture:
    def test_capture_from_gpu(self):
        gpu = GPU(KernelSpec("cap", body_length=300), seed=2)
        trace = capture_trace(gpu, cycles=200, warmup_cycles=50)
        assert trace.num_cycles == 200
        assert trace.name == "cap"
        assert gpu.cycle == 250

    def test_capture_rejects_negative_warmup(self):
        gpu = GPU(KernelSpec("cap"), seed=2)
        with pytest.raises(ValueError):
            capture_trace(gpu, cycles=10, warmup_cycles=-1)
