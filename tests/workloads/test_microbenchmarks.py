"""Tests for the power-virus microbenchmark schedules."""

import numpy as np
import pytest

from repro.workloads.microbenchmarks import (
    VirusSchedule,
    didt_virus,
    imbalance_virus,
)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period_cycles": 1, "high_width": 2.0, "low_width": 0.0,
             "pattern": "global"},
            {"period_cycles": 10, "high_width": 1.0, "low_width": 1.5,
             "pattern": "global"},
            {"period_cycles": 10, "high_width": 2.0, "low_width": 0.0,
             "pattern": "weird"},
        ],
    )
    def test_rejects_bad_schedules(self, kwargs):
        with pytest.raises(ValueError):
            VirusSchedule(**kwargs)

    def test_frequency(self):
        assert didt_virus(period_cycles=70).frequency_hz == pytest.approx(10e6)


class TestGlobalVirus:
    def test_all_sms_swing_together(self):
        virus = didt_virus(period_cycles=10)
        high = virus.widths(0)
        low = virus.widths(5)
        assert np.allclose(high, 2.0)
        assert np.allclose(low, 0.0)

    def test_periodicity(self):
        virus = didt_virus(period_cycles=10)
        assert np.allclose(virus.widths(3), virus.widths(13))

    def test_default_period_pumps_resonance(self):
        # ~63 MHz, matching the PDN's measured resonance.
        assert didt_virus().frequency_hz == pytest.approx(63.6e6, rel=0.01)


class TestImbalanceVirus:
    def test_layers_swing_in_antiphase(self):
        virus = imbalance_virus(period_cycles=100)
        widths = virus.widths(0)
        top = widths[12:]  # layers 2-3 active in the high phase
        bottom = widths[:4]
        assert np.allclose(top, 2.0)
        assert np.allclose(bottom, 0.2)
        # Half a period later the roles flip.
        flipped = virus.widths(50)
        assert np.allclose(flipped[12:], 0.2)
        assert np.allclose(flipped[:4], 2.0)

    def test_total_activity_roughly_constant(self):
        virus = imbalance_virus(period_cycles=100)
        assert virus.widths(0).sum() == pytest.approx(virus.widths(50).sum())

    def test_default_period_in_residual_plateau(self):
        assert imbalance_virus().frequency_hz == pytest.approx(1e6, rel=0.01)


class TestVirusOnGPU:
    def test_imbalance_virus_creates_layer_imbalance(self):
        """End to end: the imbalance virus driven through real SMs
        produces strong sustained layer imbalance."""
        from repro.gpu import GPU, KernelSpec
        from repro.pdn.efficiency import imbalance_fraction

        gpu = GPU(KernelSpec("virus_host", body_length=400,
                             dependence=0.0), seed=3)
        virus = imbalance_virus(period_cycles=400)
        trace = np.empty((1200, 16))
        for cycle in range(1200):
            gpu.set_issue_widths(virus.widths(cycle))
            trace[cycle] = gpu.step()
        plain = GPU(KernelSpec("virus_host", body_length=400,
                               dependence=0.0), seed=3)
        baseline = plain.run(1200)
        assert imbalance_fraction(trace) > 2 * imbalance_fraction(baseline)
