"""End-to-end checks of the paper's headline claims (abstract numbers).

Each test exercises the full pipeline — GPU timing -> PDN transient ->
detectors -> controller — and asserts the corresponding headline within
a tolerance band appropriate to a reproduction on a synthetic substrate.
"""

import numpy as np
import pytest

from repro.pdn.area import required_cr_ivr_area
from repro.pdn.efficiency import pde_conventional
from repro.sim.cosim import CosimConfig, run_cosim

GPU_DIE_MM2 = 529.0


@pytest.fixture(scope="module")
def crosslayer_runs():
    """Short cross-layer co-simulations of three diverse benchmarks."""
    return {
        name: run_cosim(
            name, CosimConfig(cycles=2000, warmup_cycles=300, seed=21)
        )
        for name in ("hotspot", "heartwall", "bfs")
    }


class TestHeadlinePDE:
    def test_pde_above_90_percent(self, crosslayer_runs):
        """Headline: 92.3 % system-level power delivery efficiency."""
        pdes = [r.efficiency().pde for r in crosslayer_runs.values()]
        assert all(p > 0.90 for p in pdes)
        assert np.mean(pdes) == pytest.approx(0.923, abs=0.03)

    def test_12_point_improvement_over_conventional(self, crosslayer_runs):
        """Headline: +12.3 % PDE over the conventional single-layer PDS."""
        for result in crosslayer_runs.values():
            conventional = pde_conventional(result.power_trace.mean_power_w)
            gain = result.efficiency().pde - conventional.pde
            assert 0.08 < gain < 0.18

    def test_loss_elimination_over_half(self, crosslayer_runs):
        """Headline: 61.5 % of total PDS energy loss eliminated."""
        for result in crosslayer_runs.values():
            stacked = result.efficiency()
            conventional = pde_conventional(result.power_trace.mean_power_w)
            cut = 1 - (stacked.total_loss / stacked.useful_power) / (
                conventional.total_loss / conventional.useful_power
            )
            assert cut > 0.5


class TestHeadlineArea:
    def test_88_percent_area_reduction(self):
        """Headline: 88 % lower CR-IVR area than circuit-only VS."""
        circuit = required_cr_ivr_area(cross_layer=False)
        cross = required_cr_ivr_area(cross_layer=True, control_latency_cycles=60)
        assert 1 - cross / circuit == pytest.approx(0.88, abs=0.05)

    def test_circuit_only_exceeds_gpu_die(self):
        """Circuit-only CR-IVR dwarfs the GPU itself (1.72x in the paper)."""
        assert required_cr_ivr_area(cross_layer=False) > GPU_DIE_MM2

    def test_cross_layer_near_fifth_of_die(self):
        cross = required_cr_ivr_area(cross_layer=True, control_latency_cycles=60)
        assert cross / GPU_DIE_MM2 == pytest.approx(0.20, abs=0.05)


class TestHeadlineReliability:
    def test_supply_stays_in_guardband_statistically(self, crosslayer_runs):
        """Benchmarks run with layer voltages overwhelmingly inside the
        0.2 V guardband (Fig. 11's boxes)."""
        for name, result in crosslayer_runs.items():
            fraction_safe = float(np.mean(result.sm_voltages >= 0.8))
            assert fraction_safe > 0.98, name

    def test_median_voltage_near_nominal(self, crosslayer_runs):
        for result in crosslayer_runs.values():
            assert float(np.median(result.sm_voltages)) == pytest.approx(
                1.0, abs=0.05
            )

    def test_imbalance_under_20_percent(self, crosslayer_runs):
        """Section VI-A: shuffled power usually below 20 % of the load."""
        for result in crosslayer_runs.values():
            assert result.power_trace.imbalance_fraction() < 0.20
