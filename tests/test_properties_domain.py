"""Property-based tests of domain invariants (hypothesis).

Covers the mathematical core the figures rest on:

* the current decomposition (global/stack/residual) is an exact,
  orthogonal, idempotent splitting for any load vector;
* PDE accounting is monotone and bounded for any physical inputs;
* the hypervisor's frequency mapping always satisfies its own budget
  and never slows any SM;
* actuation commands are always within hardware ranges;
* imbalance-distribution shares always form a probability distribution.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import imbalance_distribution, net_energy_saving
from repro.config import StackConfig
from repro.core.actuators import WeightedActuation
from repro.core.hypervisor import VSAwareHypervisor
from repro.pdn.efficiency import (
    imbalance_fraction,
    layer_shuffle_power,
    pde_voltage_stacked,
)
from repro.pdn.impedance import decompose_currents

STACK = StackConfig()

sm_powers = st.lists(
    st.floats(min_value=0.0, max_value=10.0), min_size=16, max_size=16
)
positive_powers = st.lists(
    st.floats(min_value=0.5, max_value=10.0), min_size=16, max_size=16
)


class TestDecompositionProperties:
    @given(s=sm_powers)
    @settings(max_examples=60, deadline=None)
    def test_exact_reconstruction(self, s):
        g, stk, r = decompose_currents(np.array(s), 4, 4)
        assert np.allclose(g + stk + r, s, atol=1e-9)

    @given(s=sm_powers)
    @settings(max_examples=60, deadline=None)
    def test_orthogonality(self, s):
        g, stk, r = decompose_currents(np.array(s), 4, 4)
        assert abs(np.dot(g, stk)) < 1e-6
        assert abs(np.dot(g, r)) < 1e-6
        assert abs(np.dot(stk, r)) < 1e-6

    @given(s=sm_powers)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, s):
        """Decomposing a pure component returns it unchanged."""
        _, _, r = decompose_currents(np.array(s), 4, 4)
        g2, stk2, r2 = decompose_currents(r, 4, 4)
        assert np.allclose(g2, 0.0, atol=1e-9)
        assert np.allclose(stk2, 0.0, atol=1e-9)
        assert np.allclose(r2, r, atol=1e-9)

    @given(s=sm_powers, scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, s, scale):
        _, _, r1 = decompose_currents(np.array(s), 4, 4)
        _, _, r2 = decompose_currents(scale * np.array(s), 4, 4)
        assert np.allclose(r2, scale * r1, atol=1e-7)


class TestEfficiencyProperties:
    @given(rows=st.lists(positive_powers, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_pde_bounded(self, rows):
        trace = np.array(rows)
        shuffle = layer_shuffle_power(trace, STACK)
        load = float(trace.sum(axis=1).mean())
        b = pde_voltage_stacked(load, shuffle, STACK)
        assert 0.0 < b.pde < 1.0
        assert b.input_power >= b.useful_power

    @given(rows=st.lists(positive_powers, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_shuffle_nonnegative_and_bounded(self, rows):
        trace = np.array(rows)
        shuffle = layer_shuffle_power(trace, STACK)
        load = float(trace.sum(axis=1).mean())
        assert 0.0 <= shuffle
        # At most 3/4 of the load can sit above the layer mean.
        assert imbalance_fraction(trace, STACK) <= 0.75 + 1e-9

    @given(
        pde_a=st.floats(min_value=0.5, max_value=0.99),
        pde_b=st.floats(min_value=0.5, max_value=0.99),
        penalty=st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_saving_antisymmetric_in_pde(self, pde_a, pde_b, penalty):
        if pde_b > pde_a:
            better = net_energy_saving(pde_a, pde_b, penalty)
            worse = net_energy_saving(pde_a, pde_a, penalty)
            assert better >= worse - 1e-12


class TestHypervisorProperties:
    @given(
        freqs=st.lists(
            st.floats(min_value=200e6, max_value=700e6),
            min_size=16,
            max_size=16,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mapping_meets_budget_and_never_slows(self, freqs):
        hv = VSAwareHypervisor()
        mapped = hv.map_frequencies(np.array(freqs))
        # Never slows any SM below its request.
        assert np.all(mapped >= np.array(freqs) - 1e-6)
        # Column spread within the budget.
        for column in range(4):
            sms = STACK.sms_in_column(column)
            spread = max(mapped[s] for s in sms) - min(mapped[s] for s in sms)
            assert spread <= hv.frequency_threshold_hz + 1e-6

    @given(
        freqs=st.lists(
            st.floats(min_value=200e6, max_value=700e6),
            min_size=16,
            max_size=16,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mapping_idempotent(self, freqs):
        hv = VSAwareHypervisor()
        once = hv.map_frequencies(np.array(freqs))
        twice = hv.map_frequencies(once)
        assert np.allclose(once, twice)


class TestActuationProperties:
    @given(
        error=st.floats(min_value=-1.0, max_value=2.0),
        k1=st.floats(min_value=0.0, max_value=50.0),
        k2=st.floats(min_value=0.0, max_value=50.0),
        k3=st.floats(min_value=0.0, max_value=100.0),
        w1=st.floats(min_value=0.0, max_value=1.0),
        w2=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_commands_always_in_hardware_range(self, error, k1, k2, k3, w1, w2):
        if w1 + w2 == 0.0:
            w1 = 1.0
        act = WeightedActuation(w1=w1, w2=w2, w3=0.5)
        cmd = act.commands(error, k1, k2, k3)
        assert 0.0 <= cmd.issue_width <= 2.0
        assert 0.0 <= cmd.fake_rate <= 2.0
        assert 0 <= cmd.dcc_code <= act.dac.max_code
        boost = act.boost_commands(error, k2, k3)
        assert 0.0 <= boost.fake_rate <= 2.0
        assert 0 <= boost.dcc_code <= act.dac.max_code


class TestDistributionProperties:
    @given(rows=st.lists(sm_powers, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_imbalance_shares_form_distribution(self, rows):
        dist = imbalance_distribution(np.array(rows), STACK)
        assert all(0.0 <= v <= 1.0 for v in dist.values())
        assert abs(sum(dist.values()) - 1.0) < 1e-9
