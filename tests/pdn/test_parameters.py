"""Unit tests for PDN parameter bookkeeping."""

import pytest

from repro.pdn.parameters import DEFAULT_PDN, PDNParameters


class TestSeriesResistance:
    def test_sums_loop_components(self):
        p = PDNParameters(
            board_resistance=1e-3,
            package_resistance=2e-3,
            c4_resistance=3e-3,
            ground_return_resistance=4e-3,
        )
        assert p.series_resistance == pytest.approx(10e-3)

    def test_default_is_sub_milliohm_scale(self):
        # The loop must be well below 2 mohm for the 80 A conventional
        # core current to lose only a few percent in the PDN.
        assert 0.1e-3 < DEFAULT_PDN.series_resistance < 2e-3


class TestCRConversion:
    def test_area_conductance_roundtrip(self):
        g = DEFAULT_PDN.cr_conductance_for_area(100.0)
        assert DEFAULT_PDN.cr_area_for_conductance(g) == pytest.approx(100.0)

    def test_conductance_proportional_to_area(self):
        g1 = DEFAULT_PDN.cr_conductance_for_area(10.0)
        g2 = DEFAULT_PDN.cr_conductance_for_area(20.0)
        assert g2 == pytest.approx(2 * g1)

    def test_zero_area_zero_conductance(self):
        assert DEFAULT_PDN.cr_conductance_for_area(0.0) == 0.0

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PDN.cr_conductance_for_area(-1.0)

    def test_negative_conductance_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PDN.cr_area_for_conductance(-1.0)

    def test_averaging_formula(self):
        # G = f_sw * C_fly density * area.
        p = DEFAULT_PDN
        expected = p.cr_switching_frequency * p.cr_capacitance_density * 50.0
        assert p.cr_conductance_for_area(50.0) == pytest.approx(expected)


class TestOverrides:
    def test_with_overrides_replaces_field(self):
        p = DEFAULT_PDN.with_overrides(sm_conductance=3.0)
        assert p.sm_conductance == 3.0
        assert DEFAULT_PDN.sm_conductance != 3.0 or True  # original untouched
        assert p is not DEFAULT_PDN

    def test_efficiency_anchors(self):
        # Table III orderings: VRM < front-end IVR chain efficiencies.
        assert DEFAULT_PDN.vrm_efficiency < DEFAULT_PDN.ivr_efficiency
        assert 0 < DEFAULT_PDN.cr_shuffle_efficiency < 1
