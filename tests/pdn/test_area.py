"""Tests for CR-IVR area sizing (Table III / Fig. 10 anchors)."""

import pytest

from repro.config import StackConfig
from repro.pdn.area import AreaModel, required_cr_ivr_area
from repro.pdn.parameters import GPU_DIE_AREA_MM2 as GPU_DIE_MM2


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestWorstImbalance:
    def test_sustained_worst_is_one_layer_of_dynamic_current(self, model):
        # 4 SMs x (8 W peak - 15 % leakage) / 1 V = 27.2 A.
        assert model.worst_sustained_imbalance_a == pytest.approx(27.2)

    def test_control_shrinks_effective_imbalance(self, model):
        assert model.effective_imbalance_a(60) < 0.2 * model.effective_imbalance_a(None)

    def test_effective_imbalance_grows_with_latency(self, model):
        assert model.effective_imbalance_a(60) < model.effective_imbalance_a(120)

    def test_effective_imbalance_saturates_at_sustained(self, model):
        assert model.effective_imbalance_a(10_000) == pytest.approx(
            model.worst_sustained_imbalance_a
        )

    def test_residual_floor_at_tiny_latency(self, model):
        # Even a zero-latency controller leaves the residual fraction.
        assert model.effective_imbalance_a(0) > 0

    def test_negative_latency_rejected(self, model):
        with pytest.raises(ValueError):
            model.effective_imbalance_a(-1)


class TestDroopModel:
    def test_droop_decreases_with_area(self, model):
        droops = [model.worst_droop_v(a, 60) for a in (50, 200, 800)]
        assert droops[0] > droops[1] > droops[2]

    def test_droop_decreases_with_faster_control(self, model):
        assert model.worst_droop_v(105.8, 40) < model.worst_droop_v(105.8, 140)

    def test_droop_saturates_at_rail(self, model):
        assert model.worst_droop_v(0.0, None) == model.stack.sm_voltage

    def test_paper_default_meets_guardband(self, model):
        """0.2x GPU area + 60-cycle latency: droop within 0.2 V."""
        droop = model.worst_droop_v(0.2 * GPU_DIE_MM2, 60)
        assert droop <= model.stack.voltage_guardband + 1e-9

    def test_circuit_only_at_02x_fails_badly(self, model):
        """Fig. 9: circuit-only at 0.2x area cannot hold the rail."""
        assert model.worst_voltage_v(0.2 * GPU_DIE_MM2, None) < 0.5

    def test_circuit_only_at_2x_meets_guardband(self, model):
        """Fig. 9: ~2x GPU area stabilizes the voltage above 0.8 V."""
        assert model.worst_voltage_v(2.0 * GPU_DIE_MM2, None) >= 0.8

    def test_fig10_latency_knee_near_80_cycles(self, model):
        """Beyond ~80 cycles, 0.2x area no longer meets the guardband."""
        area = 0.2 * GPU_DIE_MM2
        assert model.worst_droop_v(area, 60) <= 0.2 + 1e-9
        assert model.worst_droop_v(area, 100) > 0.2

    def test_fig10_large_area_insensitive_to_latency(self, model):
        """At 0.8x+ area, droop stays safe across the latency sweep."""
        area = 0.8 * GPU_DIE_MM2
        for latency in (40, 80, 120, 160):
            assert model.worst_droop_v(area, latency) <= 0.2


class TestSizing:
    def test_circuit_only_area_matches_paper_anchor(self):
        """Paper: 912 mm^2 (1.72x the 529 mm^2 die).  Accept 1.5-1.9x."""
        area = required_cr_ivr_area(cross_layer=False)
        assert 1.5 < area / GPU_DIE_MM2 < 1.9

    def test_cross_layer_area_matches_paper_anchor(self):
        """Paper: 105.8 mm^2 (0.2x die).  Accept 0.15-0.25x."""
        area = required_cr_ivr_area(cross_layer=True, control_latency_cycles=60)
        assert 0.15 < area / GPU_DIE_MM2 < 0.25

    def test_area_reduction_near_88_percent(self):
        """Headline: 88 % area reduction from the cross-layer approach."""
        circuit = required_cr_ivr_area(cross_layer=False)
        cross = required_cr_ivr_area(cross_layer=True, control_latency_cycles=60)
        assert 1 - cross / circuit > 0.80

    def test_sizing_is_inverse_of_droop(self, model):
        area = model.required_area_mm2(control_latency_cycles=60)
        droop = model.worst_droop_v(area, 60)
        assert droop == pytest.approx(model.stack.voltage_guardband, rel=1e-6)

    def test_slower_control_needs_more_area(self):
        fast = required_cr_ivr_area(cross_layer=True, control_latency_cycles=40)
        slow = required_cr_ivr_area(cross_layer=True, control_latency_cycles=140)
        assert slow > fast

    def test_tighter_guardband_needs_more_area(self, model):
        loose = model.required_area_mm2(60, droop_target_v=0.3)
        tight = model.required_area_mm2(60, droop_target_v=0.1)
        assert tight > loose

    def test_rejects_nonpositive_target(self, model):
        with pytest.raises(ValueError):
            model.required_area_mm2(60, droop_target_v=0.0)


class TestDieAreaRatio:
    def test_default_die_area_is_shared_constant(self, model):
        assert model.gpu_die_area_mm2 == GPU_DIE_MM2 == 529.0

    def test_required_area_ratio_consistent(self, model):
        ratio = model.required_area_ratio(control_latency_cycles=60)
        area = model.required_area_mm2(control_latency_cycles=60)
        assert ratio == pytest.approx(area / model.gpu_die_area_mm2)

    def test_ratio_scales_with_die_area(self):
        small_die = AreaModel(gpu_die_area_mm2=100.0)
        big_die = AreaModel(gpu_die_area_mm2=1000.0)
        assert (
            small_die.required_area_ratio(60)
            > big_die.required_area_ratio(60)
        )
