"""Tests for level-shifted voltage-domain-crossing interfaces."""

import pytest

from repro.config import StackConfig
from repro.pdn.level_shifters import (
    LEVEL_SHIFTER_OPTIONS,
    InterfaceOverhead,
    LevelShifterSpec,
    best_topology_for_rate,
    chip_interface_overhead,
)


class TestSpecs:
    def test_three_topologies(self):
        assert set(LEVEL_SHIFTER_OPTIONS) == {
            "cross_coupled", "capacitive_coupled", "switched_capacitor"
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            LevelShifterSpec("bad", 0.0, 100.0, 5.0, 1e9)

    def test_rate_support(self):
        sc = LEVEL_SHIFTER_OPTIONS["switched_capacitor"]
        assert sc.supports_rate(1.0e9)
        assert not LEVEL_SHIFTER_OPTIONS["cross_coupled"].supports_rate(1.0e9)


class TestPaperSelection:
    def test_switched_capacitor_chosen_at_1ghz(self):
        """The paper: the SC topology works at 1 GHz with the best
        energy-delay trade-off."""
        best = best_topology_for_rate(1.0e9)
        assert best.name == "switched-capacitor"

    def test_sc_has_best_energy_delay(self):
        sc = LEVEL_SHIFTER_OPTIONS["switched_capacitor"]
        for other in LEVEL_SHIFTER_OPTIONS.values():
            assert sc.energy_delay_product <= other.energy_delay_product

    def test_no_topology_for_absurd_rate(self):
        with pytest.raises(ValueError, match="supports"):
            best_topology_for_rate(100e9)


class TestChipOverhead:
    def test_default_overhead_modest(self):
        overhead = chip_interface_overhead()
        # Power: well below 1% of the ~60-90 W GPU envelope.
        assert 0.0 < overhead.power_w < 1.0
        # Area: far below the CR-IVR budget.
        assert overhead.area_mm2 < 1.0

    def test_power_scales_with_activity(self):
        quiet = chip_interface_overhead(activity=0.1)
        busy = chip_interface_overhead(activity=0.5)
        assert busy.power_w == pytest.approx(5 * quiet.power_w)

    def test_crossings_count(self):
        overhead = chip_interface_overhead(
            stack=StackConfig(), bus_width_bits=128
        )
        assert overhead.num_crossings == 16 * 128

    def test_rejects_unsupported_rate(self):
        with pytest.raises(ValueError):
            chip_interface_overhead(shifter_key="cross_coupled",
                                    signal_rate_hz=1.0e9)

    def test_interface_validation(self):
        sc = LEVEL_SHIFTER_OPTIONS["switched_capacitor"]
        with pytest.raises(ValueError):
            InterfaceOverhead(sc, 0, 1e9, 0.5)
        with pytest.raises(ValueError):
            InterfaceOverhead(sc, 10, 1e9, 1.5)
