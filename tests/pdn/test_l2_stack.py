"""Tests for the stacked L2 power grid model."""

import numpy as np
import pytest

from repro.pdn.l2_stack import (
    L2StackConfig,
    interleaved_access_rates,
)


@pytest.fixture
def l2():
    return L2StackConfig()


class TestConfig:
    def test_defaults_valid(self):
        L2StackConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_layers": 1},
            {"banks_per_layer": 0},
            {"bank_leakage_w": 0.0},
            {"energy_per_access_j": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            L2StackConfig(**kwargs)

    def test_layer_leakage(self, l2):
        assert l2.layer_leakage_w == pytest.approx(8 * 0.08)


class TestLayerPowers:
    def test_idle_layers_draw_leakage_only(self, l2):
        powers = l2.layer_powers_w(np.zeros(4))
        assert np.allclose(powers, l2.layer_leakage_w)

    def test_access_power_proportional(self, l2):
        low = l2.layer_powers_w([0.1, 0.1, 0.1, 0.1])
        high = l2.layer_powers_w([0.2, 0.2, 0.2, 0.2])
        dynamic_low = low - l2.layer_leakage_w
        dynamic_high = high - l2.layer_leakage_w
        assert np.allclose(dynamic_high, 2 * dynamic_low)

    def test_shape_validated(self, l2):
        with pytest.raises(ValueError):
            l2.layer_powers_w([0.1, 0.1])
        with pytest.raises(ValueError):
            l2.layer_powers_w([-0.1, 0.1, 0.1, 0.1])


class TestBalancePremise:
    """The paper's reason for focusing on the SM grid: the L2 stack is
    leakage-dominated and interleaved, hence naturally balanced."""

    def test_interleaved_traffic_is_nearly_balanced(self, l2):
        rates = interleaved_access_rates(1.0, skew=0.05)
        assert l2.imbalance_fraction(rates) < 0.02

    def test_leakage_domination_damps_even_big_skew(self, l2):
        rates = interleaved_access_rates(0.5, skew=0.3)
        assert l2.imbalance_fraction(rates) < 0.05

    def test_equalizer_is_tiny_compared_to_sm_crivr(self, l2):
        # Worst realistic skew: a fraction of an access per cycle.
        g = l2.equalizer_conductance_s(worst_access_skew=0.25)
        # SM-grid CR-IVR at the 0.2x design point is ~16 S.
        assert g < 2.0

    def test_equalizer_scales_with_skew(self, l2):
        assert l2.equalizer_conductance_s(0.5) == pytest.approx(
            2 * l2.equalizer_conductance_s(0.25)
        )

    def test_equalizer_validation(self, l2):
        with pytest.raises(ValueError):
            l2.equalizer_conductance_s(-1.0)
        with pytest.raises(ValueError):
            l2.equalizer_conductance_s(0.1, guardband_v=0.0)


class TestInterleaving:
    def test_rates_sum_preserved(self):
        rates = interleaved_access_rates(2.0, skew=0.1)
        assert rates.sum() == pytest.approx(2.0)

    def test_zero_skew_uniform(self):
        rates = interleaved_access_rates(1.0, skew=0.0)
        assert np.allclose(rates, 0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            interleaved_access_rates(-1.0)
        with pytest.raises(ValueError):
            interleaved_access_rates(1.0, skew=1.0)
