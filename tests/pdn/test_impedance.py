"""Tests for the effective impedance analysis (Fig. 3 machinery)."""

import numpy as np
import pytest

from repro.circuits.ac import log_frequency_grid
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.impedance import (
    ImpedanceAnalyzer,
    StimulusKind,
    decompose_currents,
)


@pytest.fixture(scope="module")
def analyzer():
    return ImpedanceAnalyzer(build_stacked_pdn())


@pytest.fixture(scope="module")
def freqs():
    return log_frequency_grid(1e6, 5e8, points_per_decade=8)


class TestDecomposition:
    def test_components_sum_to_input(self):
        rng = np.random.default_rng(7)
        s = rng.normal(5.0, 2.0, 16)
        g, st, r = decompose_currents(s, 4, 4)
        assert np.allclose(g + st + r, s)

    def test_global_is_overall_mean(self):
        s = np.arange(16.0)
        g, _, _ = decompose_currents(s, 4, 4)
        assert np.allclose(g, s.mean())

    def test_stack_component_sums_to_zero(self):
        rng = np.random.default_rng(8)
        s = rng.normal(5.0, 2.0, 16)
        _, st, _ = decompose_currents(s, 4, 4)
        assert st.sum() == pytest.approx(0.0, abs=1e-9)

    def test_residual_zero_for_column_uniform_load(self):
        # Same current in every SM of each column: no residual.
        s = np.tile(np.array([1.0, 2.0, 3.0, 4.0]), 4)  # layer-major
        _, _, r = decompose_currents(s, 4, 4)
        assert np.allclose(r, 0.0, atol=1e-12)

    def test_orthogonality(self):
        rng = np.random.default_rng(9)
        s = rng.normal(0.0, 1.0, 16)
        g, st, r = decompose_currents(s, 4, 4)
        assert np.dot(g, st) == pytest.approx(0.0, abs=1e-9)
        assert np.dot(g, r) == pytest.approx(0.0, abs=1e-9)
        assert np.dot(st, r) == pytest.approx(0.0, abs=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="per-SM"):
            decompose_currents(np.ones(8), 4, 4)


class TestPatterns:
    def test_global_pattern_uniform(self, analyzer):
        p = analyzer.pattern(StimulusKind.GLOBAL)
        assert np.allclose(p, 1.0)

    def test_stack_pattern_zero_sum(self, analyzer):
        p = analyzer.pattern(StimulusKind.STACK, column=1)
        assert p.sum() == pytest.approx(0.0, abs=1e-12)
        assert p.max() == pytest.approx(1.0)

    def test_residual_pattern_normalized_at_stimulated_sm(self, analyzer):
        p = analyzer.pattern(StimulusKind.RESIDUAL, sm=5)
        assert p[5] == pytest.approx(1.0)
        # Residual currents circulate within the stimulated column.
        layer, column = analyzer.stack.layer_column(5)
        outside = [
            k for k in range(16) if analyzer.stack.layer_column(k)[1] != column
        ]
        assert np.allclose(p[outside], 0.0, atol=1e-12)


class TestFigure3Shapes:
    """The impedance signatures that drive the whole paper."""

    def test_global_resonance_peak_location(self, analyzer, freqs):
        z = analyzer.sweep(freqs, StimulusKind.GLOBAL)
        peak_f = freqs[int(np.argmax(z))]
        # Paper: ~70 MHz.  Accept the 40-120 MHz band.
        assert 40e6 < peak_f < 120e6

    def test_global_peak_magnitude_tens_of_milliohms(self, analyzer, freqs):
        z = analyzer.sweep(freqs, StimulusKind.GLOBAL)
        assert 0.02 < z.max() < 0.15

    def test_residual_plateau_at_low_frequency(self, analyzer, freqs):
        z = analyzer.sweep(freqs, StimulusKind.RESIDUAL, observe_sm=0, sm=0)
        # Plateau: low-frequency value within 20% of the 1 MHz value
        # through ~3 MHz.
        low = z[freqs <= 3e6]
        assert np.all(np.abs(low - z[0]) < 0.2 * z[0])
        # Magnitude: the paper's ~0.25 ohm plateau; accept 0.1-0.4.
        assert 0.1 < z[0] < 0.4

    def test_residual_dominates_global(self, analyzer, freqs):
        """The key finding: current imbalance is the worst noise source."""
        zg = analyzer.sweep(freqs, StimulusKind.GLOBAL)
        zr = analyzer.sweep(freqs, StimulusKind.RESIDUAL, observe_sm=0, sm=0)
        assert zr.max() > 2.0 * zg.max()

    def test_residual_rolls_off_at_high_frequency(self, analyzer, freqs):
        z = analyzer.sweep(freqs, StimulusKind.RESIDUAL, observe_sm=0, sm=0)
        assert z[-1] < 0.5 * z[0]

    def test_same_layer_coupling_exceeds_cross_layer(self, analyzer):
        curves = analyzer.figure3_curves(np.array([1e6, 3e6]))
        assert np.all(
            curves["z_residual_same_layer"] > curves["z_residual_diff_layer"]
        )


class TestCRIVRSuppression:
    """Fig. 3(b): on-chip regulation flattens the impedance peaks."""

    def test_cr_ivr_cuts_residual_plateau(self, freqs):
        bare = ImpedanceAnalyzer(build_stacked_pdn())
        regulated = ImpedanceAnalyzer(build_stacked_pdn(cr_ivr_area_mm2=900.0))
        z_bare = bare.sweep(freqs, StimulusKind.RESIDUAL, observe_sm=0, sm=0)
        z_reg = regulated.sweep(freqs, StimulusKind.RESIDUAL, observe_sm=0, sm=0)
        assert z_reg[0] < 0.35 * z_bare[0]

    def test_bigger_cr_ivr_lower_impedance(self, freqs):
        plateaus = []
        for area in (100.0, 400.0, 900.0):
            an = ImpedanceAnalyzer(build_stacked_pdn(cr_ivr_area_mm2=area))
            plateaus.append(
                an.sweep(np.array([1e6]), StimulusKind.RESIDUAL, observe_sm=0, sm=0)[0]
            )
        assert plateaus[0] > plateaus[1] > plateaus[2]

    def test_worst_case_impedance_covers_all_kinds(self, analyzer, freqs):
        worst = analyzer.worst_case_impedance(freqs)
        zr = analyzer.sweep(freqs, StimulusKind.RESIDUAL, observe_sm=0, sm=0)
        assert worst >= zr.max() - 1e-12
