"""Tests for the PDN netlist builders."""

import numpy as np
import pytest

from repro.circuits import TransientSolver
from repro.config import StackConfig
from repro.pdn.builder import (
    build_conventional_pdn,
    build_stacked_pdn,
    sm_node,
    tap_node,
)


class TestStackedTopology:
    def test_default_has_16_sm_sources(self):
        pdn = build_stacked_pdn()
        assert len(pdn.sm_sources) == 16

    def test_sm_terminals_follow_layer_indexing(self):
        pdn = build_stacked_pdn()
        # Bottom layer SM 0: between boundary 1 and boundary 0 of column 0.
        assert pdn.sm_terminals(0) == (tap_node(1, 0), tap_node(0, 0))
        # Top layer, last column (SM 15): boundaries 4 and 3 of column 3.
        assert pdn.sm_terminals(15) == (tap_node(4, 3), tap_node(3, 3))

    def test_cr_ivr_attached_when_area_positive(self):
        pdn = build_stacked_pdn(cr_ivr_area_mm2=100.0)
        assert pdn.cr_ivr is not None
        # 4 columns x 3 interior boundaries = 12 stamps.
        names = [e.name for e in pdn.circuit if e.name.startswith("crivr")]
        assert len(names) == 12

    def test_no_cr_ivr_by_default(self):
        pdn = build_stacked_pdn()
        assert pdn.cr_ivr is None
        assert not any(e.name.startswith("crivr") for e in pdn.circuit)

    def test_load_conductance_optional(self):
        with_g = build_stacked_pdn(include_load_conductance=True)
        without_g = build_stacked_pdn(include_load_conductance=False)
        assert any(e.name.startswith("g_sm") for e in with_g.circuit)
        assert not any(e.name.startswith("g_sm") for e in without_g.circuit)

    def test_two_layer_stack_supported(self):
        stack = StackConfig(num_layers=2, num_columns=2, board_voltage=2.0)
        pdn = build_stacked_pdn(stack=stack)
        assert len(pdn.sm_sources) == 4
        assert pdn.sm_terminals(3) == (tap_node(2, 1), tap_node(1, 1))


class TestCurrentBuffer:
    def test_builder_binds_shared_buffer(self):
        pdn = build_stacked_pdn()
        assert pdn.sm_current_values is not None
        assert pdn.sm_current_values.shape == (16,)
        for k, source in enumerate(pdn.sm_sources):
            assert source.batch is pdn.sm_current_values
            assert source.batch_index == k

    def test_set_sm_currents_is_one_write(self):
        pdn = build_stacked_pdn()
        amps = np.linspace(0.5, 2.0, 16)
        pdn.set_sm_currents(amps)
        assert np.array_equal(pdn.sm_current_values, amps)
        for k, source in enumerate(pdn.sm_sources):
            assert source.current_at(0.0) == amps[k]

    def test_conventional_pdn_also_bound(self):
        pdn = build_conventional_pdn()
        assert pdn.sm_current_values is not None
        pdn.set_sm_currents(np.full(16, 1.5))
        assert all(s.current_at(0.0) == 1.5 for s in pdn.sm_sources)

    def test_unbound_fallback_uses_override(self):
        pdn = build_stacked_pdn()
        pdn.sm_current_values = None
        for source in pdn.sm_sources:
            source.batch = None
        pdn.set_sm_currents(np.full(16, 2.5))
        assert all(s.override == 2.5 for s in pdn.sm_sources)


class TestStackedDCBehaviour:
    def test_balanced_load_divides_supply_evenly(self):
        pdn = build_stacked_pdn()
        solver = TransientSolver(pdn.circuit, dt=1e-10)
        pdn.set_sm_currents(np.full(16, 5.0))
        solver.initialize_dc()
        voltages = [pdn.sm_voltage(solver, sm) for sm in range(16)]
        # Balanced currents: every SM sits near board_voltage / 4.
        assert all(abs(v - 4.1 / 4) < 0.02 for v in voltages)

    def test_imbalanced_layer_droops_without_cr_ivr(self):
        pdn = build_stacked_pdn()
        solver = TransientSolver(pdn.circuit, dt=1e-10)
        currents = np.full(16, 5.0)
        currents[0:4] = 7.0  # bottom layer draws more
        pdn.set_sm_currents(currents)
        solver.initialize_dc()
        bottom = pdn.sm_voltage(solver, 0)
        top = pdn.sm_voltage(solver, 12)
        assert bottom < 1.0 < top  # hungry layer starves, light layer rises

    def test_cr_ivr_restores_imbalanced_layer(self):
        currents = np.full(16, 5.0)
        currents[0:4] = 7.0
        droops = {}
        for area in (0.0, 900.0):
            pdn = build_stacked_pdn(cr_ivr_area_mm2=area)
            solver = TransientSolver(pdn.circuit, dt=1e-10)
            pdn.set_sm_currents(currents)
            solver.initialize_dc()
            droops[area] = 4.1 / 4 - pdn.sm_voltage(solver, 0)
        assert droops[900.0] < 0.3 * droops[0.0]

    def test_supply_current_measured(self):
        pdn = build_stacked_pdn()
        solver = TransientSolver(pdn.circuit, dt=1e-10)
        pdn.set_sm_currents(np.full(16, 4.0))
        solver.initialize_dc()
        # Series stack: board current ~ one layer's total (4 SMs x 4 A)
        # plus the load-conductance draw.
        i_in = solver.vsource_current("vdd")
        assert 15.0 < i_in < 25.0


class TestConventionalTopology:
    def test_has_per_sm_nodes_and_sources(self):
        pdn = build_conventional_pdn()
        assert len(pdn.sm_sources) == 16
        assert sm_node(0) in pdn.record_nodes()

    def test_rejects_nonpositive_sm_count(self):
        with pytest.raises(ValueError):
            build_conventional_pdn(num_sms=0)

    def test_dc_rail_near_supply(self):
        pdn = build_conventional_pdn()
        solver = TransientSolver(pdn.circuit, dt=1e-10)
        pdn.set_sm_currents(np.full(16, 5.0))
        solver.initialize_dc()
        v = pdn.sm_voltage(solver, 5)
        # 80 A through ~1 mohm: tens of millivolts of IR drop.
        assert 0.85 < v < 1.0

    def test_board_supplies_full_current(self):
        pdn = build_conventional_pdn()
        solver = TransientSolver(pdn.circuit, dt=1e-10)
        pdn.set_sm_currents(np.full(16, 5.0))
        solver.initialize_dc()
        # All 16 SM currents flow through the single rail.
        assert solver.vsource_current("vdd") > 16 * 5.0 * 0.95

    def test_grid_links_couple_neighbours(self):
        pdn = build_conventional_pdn()
        names = {e.name for e in pdn.circuit}
        assert "r_link_h0" in names
        assert "r_link_v0" in names
        # Last column has no rightward link.
        assert "r_link_h3" not in names
