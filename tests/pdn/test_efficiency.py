"""Tests for PDE accounting (Fig. 8 / Table III anchors)."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.pdn.efficiency import (
    EfficiencyBreakdown,
    imbalance_fraction,
    layer_shuffle_power,
    pde_conventional,
    pde_single_ivr,
    pde_voltage_stacked,
)

LOAD_W = 80.0


class TestBreakdownContainer:
    def test_input_power_sums_components(self):
        b = EfficiencyBreakdown(80.0, 10.0, 4.0, 3.0, 1.0)
        assert b.input_power == pytest.approx(98.0)
        assert b.total_loss == pytest.approx(18.0)
        assert b.pde == pytest.approx(80.0 / 98.0)

    def test_fractions_sum_to_one(self):
        b = EfficiencyBreakdown(80.0, 10.0, 4.0, 3.0, 1.0)
        assert sum(b.fractions().values()) == pytest.approx(1.0)

    def test_rejects_nonpositive_useful_power(self):
        with pytest.raises(ValueError):
            EfficiencyBreakdown(0.0, 1.0, 1.0, 1.0, 1.0)

    def test_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            EfficiencyBreakdown(80.0, -1.0, 0.0, 0.0, 0.0)


class TestTableIIIAnchors:
    """PDE ordering and magnitudes from Table III."""

    def test_conventional_near_80_percent(self):
        assert pde_conventional(LOAD_W).pde == pytest.approx(0.80, abs=0.02)

    def test_single_ivr_near_85_percent(self):
        assert pde_single_ivr(LOAD_W).pde == pytest.approx(0.85, abs=0.02)

    def test_voltage_stacking_above_90_percent(self):
        b = pde_voltage_stacked(LOAD_W, shuffled_power_w=0.08 * LOAD_W)
        assert b.pde > 0.90

    def test_ordering_vrm_ivr_vs(self):
        vrm = pde_conventional(LOAD_W).pde
        ivr = pde_single_ivr(LOAD_W).pde
        vs = pde_voltage_stacked(LOAD_W, 0.08 * LOAD_W).pde
        assert vrm < ivr < vs

    def test_vs_eliminates_over_half_the_loss(self):
        """Headline: 61.5 % of total PDS loss eliminated."""
        conventional = pde_conventional(LOAD_W)
        stacked = pde_voltage_stacked(LOAD_W, 0.08 * LOAD_W)
        # Compare losses per watt delivered.
        loss_conv = conventional.total_loss / conventional.useful_power
        loss_vs = stacked.total_loss / stacked.useful_power
        assert 1 - loss_vs / loss_conv > 0.5


class TestLossPhysics:
    def test_conventional_pdn_loss_quadratic_in_load(self):
        low = pde_conventional(40.0)
        high = pde_conventional(80.0)
        assert high.pdn_loss == pytest.approx(4 * low.pdn_loss, rel=1e-6)

    def test_vs_pdn_loss_much_smaller_than_conventional(self):
        conv = pde_conventional(LOAD_W)
        vs = pde_voltage_stacked(LOAD_W, 0.0)
        # Current is 4.1x smaller, loss ~17x smaller.
        assert vs.pdn_loss < conv.pdn_loss / 10

    def test_vs_has_no_conversion_loss(self):
        assert pde_voltage_stacked(LOAD_W, 5.0).conversion_loss == 0.0

    def test_more_imbalance_lower_pde(self):
        balanced = pde_voltage_stacked(LOAD_W, 0.05 * LOAD_W)
        imbalanced = pde_voltage_stacked(LOAD_W, 0.30 * LOAD_W)
        assert balanced.pde > imbalanced.pde

    def test_controller_power_counted(self):
        without = pde_voltage_stacked(LOAD_W, 5.0)
        with_ctl = pde_voltage_stacked(LOAD_W, 5.0, controller_power_w=2.0)
        assert with_ctl.pde < without.pde

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_rejects_nonpositive_load(self, bad):
        with pytest.raises(ValueError):
            pde_conventional(bad)
        with pytest.raises(ValueError):
            pde_single_ivr(bad)
        with pytest.raises(ValueError):
            pde_voltage_stacked(bad, 0.0)

    def test_rejects_negative_shuffle(self):
        with pytest.raises(ValueError):
            pde_voltage_stacked(LOAD_W, -1.0)


class TestShufflePower:
    def test_balanced_trace_needs_no_shuffling(self):
        trace = np.full((10, 16), 5.0)
        assert layer_shuffle_power(trace) == pytest.approx(0.0)

    def test_one_hot_layer_shuffles_three_quarters(self):
        # All power in one layer: 3/4 of it must be recycled downward.
        trace = np.zeros((1, 16))
        trace[0, :4] = 5.0  # bottom layer only, 20 W total
        assert layer_shuffle_power(trace) == pytest.approx(15.0)

    def test_fraction_of_total(self):
        trace = np.zeros((1, 16))
        trace[0, :4] = 5.0
        assert imbalance_fraction(trace) == pytest.approx(0.75)

    def test_time_average(self):
        balanced = np.full((1, 16), 5.0)
        skewed = np.zeros((1, 16))
        skewed[0, :4] = 20.0
        trace = np.vstack([balanced, skewed])
        expected = (0.0 + 60.0) / 2
        assert layer_shuffle_power(trace) == pytest.approx(expected)

    def test_column_imbalance_is_not_shuffled(self):
        # Imbalance across columns within the same layers does not move
        # charge between layers.
        trace = np.zeros((1, 16))
        grid = trace.reshape(1, 4, 4)
        grid[0, :, 0] = 8.0  # one hot column, all layers equal
        assert layer_shuffle_power(trace) == pytest.approx(0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            layer_shuffle_power(np.ones((3, 8)))

    def test_zero_power_fraction_rejected(self):
        with pytest.raises(ValueError):
            imbalance_fraction(np.zeros((2, 16)))

    def test_custom_stack_geometry(self):
        stack = StackConfig(num_layers=2, num_columns=2, board_voltage=2.0)
        trace = np.array([[4.0, 4.0, 0.0, 0.0]])  # bottom layer only
        assert layer_shuffle_power(trace, stack) == pytest.approx(4.0)
