"""Switch-level CR-IVR validation against the averaged model."""

import numpy as np
import pytest

from repro.pdn.switch_level import SwitchLevelLadder, ripple_amplitude


class TestConstruction:
    def test_defaults(self):
        ladder = SwitchLevelLadder()
        assert ladder.layer_voltages.shape == (4,)
        assert ladder.flying_voltages.shape == (3,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_layers": 1},
            {"layer_capacitance_f": 0.0},
            {"flying_capacitance_f": -1e-9},
            {"switching_frequency_hz": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SwitchLevelLadder(**kwargs)

    def test_averaged_conductance(self):
        ladder = SwitchLevelLadder(
            flying_capacitance_f=20e-9, switching_frequency_hz=50e6
        )
        assert ladder.averaged_conductance_s == pytest.approx(1.0)


class TestBalancedOperation:
    def test_balanced_stack_stays_put(self):
        ladder = SwitchLevelLadder()
        history = ladder.run(200)
        assert np.allclose(history, 1.0)

    def test_no_loss_when_balanced(self):
        ladder = SwitchLevelLadder()
        ladder.run(200)
        assert ladder.dissipated_energy_j == pytest.approx(0.0, abs=1e-18)
        assert ladder.transferred_charge_c == pytest.approx(0.0, abs=1e-15)


class TestEqualization:
    def test_imbalance_decays(self):
        ladder = SwitchLevelLadder()
        ladder.layer_voltages[:] = [0.9, 1.0, 1.0, 1.1]
        initial = ladder.spread()
        ladder.run(600)
        assert ladder.spread() < 0.1 * initial

    def test_decay_rate_matches_averaged_model(self):
        """The validation that justifies the averaged model: the spread
        decays exponentially at an order-unity multiple of g/C (the
        mode eigenvalue of the ladder Laplacian; ~0.59 for this
        excitation), and the multiple is *independent of C_fly* — i.e.
        the rate scales exactly as the difference conductance predicts.
        """
        alphas = []
        for c_fly in (5e-9, 10e-9):
            ladder = SwitchLevelLadder(flying_capacitance_f=c_fly)
            ladder.layer_voltages[:] = [0.9, 1.0, 1.0, 1.1]
            s0 = ladder.spread()
            half_periods = 300
            ladder.run(half_periods)
            elapsed = half_periods * ladder.half_period_s
            rate = ladder.equalization_rate_prediction()
            alpha = -np.log(ladder.spread() / s0) / (rate * elapsed)
            alphas.append(alpha)
        # Order-unity eigenvalue...
        assert 0.4 < alphas[0] < 0.8
        # ...identical across C_fly: the rate is proportional to
        # f_sw * C_fly exactly as the averaged conductance says.
        assert alphas[0] == pytest.approx(alphas[1], rel=0.1)

    def test_faster_switching_equalizes_faster(self):
        spreads = []
        for f_sw in (25e6, 100e6):
            ladder = SwitchLevelLadder(switching_frequency_hz=f_sw)
            ladder.layer_voltages[:] = [0.9, 1.0, 1.0, 1.1]
            # Same wall-clock duration for both frequencies.
            ladder.run(int(2e-6 / ladder.half_period_s))
            spreads.append(ladder.spread())
        assert spreads[1] < spreads[0]

    def test_charge_transfer_loss_accrues_with_imbalance(self):
        ladder = SwitchLevelLadder()
        ladder.layer_voltages[:] = [0.8, 1.0, 1.0, 1.2]
        ladder.run(100)
        assert ladder.dissipated_energy_j > 0


class TestSustainedImbalance:
    def test_steady_state_spread_tracks_averaged_prediction(self):
        """A sustained per-layer imbalance current produces a steady
        voltage spread ~ dI / g, the averaged model's droop."""
        ladder = SwitchLevelLadder()
        # Layer 0 draws 1 A more than the stack average; the supply is
        # emulated by giving the other layers a matching surplus.
        currents = np.array([0.75, -0.25, -0.25, -0.25])
        ladder.run(4000, layer_currents_a=currents)
        spread = ladder.spread()
        g = ladder.averaged_conductance_s
        # Spread is bounded within a small multiple of the averaged
        # prediction (the ladder distributes the current over two hops).
        assert spread == pytest.approx(1.0 / g, rel=0.9)

    def test_ripple_scales_inversely_with_f_and_c(self):
        assert ripple_amplitude(1.0, 20e-9, 50e6) == pytest.approx(1.0)
        assert ripple_amplitude(1.0, 40e-9, 50e6) == pytest.approx(0.5)
        assert ripple_amplitude(1.0, 20e-9, 100e6) == pytest.approx(0.5)

    def test_ripple_validation(self):
        with pytest.raises(ValueError):
            ripple_amplitude(-1.0, 1e-9, 1e6)
        with pytest.raises(ValueError):
            ripple_amplitude(1.0, 0.0, 1e6)

    def test_current_shape_validated(self):
        ladder = SwitchLevelLadder()
        with pytest.raises(ValueError):
            ladder.step(np.ones(3))

    def test_run_validation(self):
        with pytest.raises(ValueError):
            SwitchLevelLadder().run(0)
