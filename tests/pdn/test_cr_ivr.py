"""Tests for the CR-IVR design object and its averaged-model physics."""

import numpy as np
import pytest

from repro.circuits import Circuit, TransientSolver
from repro.config import StackConfig
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.cr_ivr import CRIVRDesign, switch_level_equalization_rate
from repro.pdn.parameters import DEFAULT_PDN


class TestDesign:
    def test_distributed_one_sub_ivr_per_column(self):
        d = CRIVRDesign(100.0, DEFAULT_PDN, StackConfig())
        assert d.num_sub_ivrs == 4
        assert d.num_boundaries == 3

    def test_conductance_split_across_stamps(self):
        d = CRIVRDesign(100.0, DEFAULT_PDN, StackConfig())
        assert d.conductance_per_stamp * 12 == pytest.approx(d.total_conductance)

    def test_zero_area_attaches_nothing(self):
        d = CRIVRDesign(0.0, DEFAULT_PDN, StackConfig())
        ckt = Circuit()
        ckt.add_voltage_source("v", "a", "0", 1.0)
        assert d.attach(ckt, [["0", "a", "b", "c", "d"]] * 4) == []

    def test_attach_validates_tap_count(self):
        d = CRIVRDesign(100.0, DEFAULT_PDN, StackConfig())
        ckt = Circuit()
        ckt.add_voltage_source("v", "a", "0", 1.0)
        with pytest.raises(ValueError, match="taps"):
            d.attach(ckt, [["a", "b"]])


class TestEqualizationPhysics:
    def test_balanced_stack_draws_no_cr_current(self):
        """CR-IVR must be invisible when layers are balanced.

        Board input current with and without a huge CR-IVR must match
        under perfectly balanced loads — the defining property of charge
        recycling (a resistor bleeder would fail this).
        """
        currents = np.full(16, 5.0)
        inputs = {}
        for area in (0.0, 900.0):
            pdn = build_stacked_pdn(cr_ivr_area_mm2=area)
            solver = TransientSolver(pdn.circuit, dt=1e-10)
            pdn.set_sm_currents(currents)
            solver.initialize_dc()
            inputs[area] = solver.vsource_current("vdd")
        assert inputs[900.0] == pytest.approx(inputs[0.0], rel=1e-6)

    def test_equalizes_all_interior_boundaries(self):
        # Worst imbalance: top layer idles (a sustained 20 A mismatch).
        # Growing the CR-IVR must monotonically shrink the layer-voltage
        # spread, and at the circuit-only sizing (~900 mm^2) the starved
        # layers must stay above the 0.8 V guardband floor.
        currents = np.full(16, 6.0)
        currents[12:] = 1.0  # top layer near-idle
        spreads = {}
        minima = {}
        for area in (0.0, 300.0, 900.0):
            pdn = build_stacked_pdn(cr_ivr_area_mm2=area)
            solver = TransientSolver(pdn.circuit, dt=1e-10)
            pdn.set_sm_currents(currents)
            solver.initialize_dc()
            voltages = [pdn.sm_voltage(solver, sm) for sm in range(16)]
            spreads[area] = max(voltages) - min(voltages)
            minima[area] = min(voltages)
        assert spreads[0.0] > spreads[300.0] > spreads[900.0]
        assert minima[900.0] >= 0.75


class TestSwitchLevelRate:
    def test_rate_formula(self):
        rate = switch_level_equalization_rate(1e-9, 100e6, 100e-9)
        assert rate == pytest.approx(1e6)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            switch_level_equalization_rate(0.0, 1e6, 1e-9)

    def test_rate_matches_averaged_conductance_model(self):
        """f_sw * C_fly acting on a layer decap C gives rate g/C."""
        f_sw, c_fly, c_layer = 50e6, 2e-9, 256e-9
        g = f_sw * c_fly  # averaged conductance
        assert switch_level_equalization_rate(c_fly, f_sw, c_layer) == pytest.approx(
            g / c_layer
        )
