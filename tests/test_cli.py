"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("benchmarks", "cosim", "sweep", "impedance", "size",
                        "pde"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--benchmarks", "bfs,srad", "--areas", "52.9",
             "--workers", "1", "--output", ""]
        )
        assert args.benchmarks == "bfs,srad"
        assert args.areas == "52.9"
        assert args.workers == 1
        assert args.output == ""

    def test_cosim_options(self):
        args = build_parser().parse_args(
            ["cosim", "bfs", "--cycles", "100", "--no-controller"]
        )
        assert args.benchmark == "bfs"
        assert args.cycles == 100
        assert args.no_controller

    def test_run_is_cosim_alias(self):
        args = build_parser().parse_args(
            ["run", "bfs", "--telemetry", "/tmp/t"]
        )
        assert args.benchmark == "bfs"
        assert args.telemetry == "/tmp/t"

    def test_trace_takes_manifest_path(self):
        args = build_parser().parse_args(["trace", "some/dir"])
        assert args.manifest == "some/dir"
        assert callable(args.func)

    def test_observe_takes_manifest_path(self):
        args = build_parser().parse_args(["observe", "runs/h"])
        assert args.manifest == "runs/h"
        assert callable(args.func)

    def test_compare_takes_two_manifests_and_thresholds(self):
        args = build_parser().parse_args(
            ["compare", "base", "cand", "--thresholds", "t.json"]
        )
        assert args.base == "base"
        assert args.candidate == "cand"
        assert args.thresholds == "t.json"
        assert callable(args.func)

    def test_faults_options(self):
        args = build_parser().parse_args(
            ["faults", "guardband-breaker", "--no-degradation",
             "--expect", "violated", "--cycles", "300"]
        )
        assert args.scenario == "guardband-breaker"
        assert args.no_degradation
        assert args.expect == "violated"
        assert args.cycles == 300
        assert callable(args.func)

    def test_faults_list_flag(self):
        args = build_parser().parse_args(["faults", "--list"])
        assert args.list
        assert args.scenario == ""

    def test_explore_options(self):
        args = build_parser().parse_args(
            ["explore", "--benchmarks", "hotspot", "--areas", "52.9,211.6",
             "--axis", "warmup_cycles=60,0", "--axis", "controller.k2=0.1",
             "--rounds", "3", "--eta", "4", "--screen-cycles", "120",
             "--guardband", "0.75", "--store", "s.jsonl",
             "--output", "p.json"]
        )
        assert args.benchmarks == "hotspot"
        assert args.axis == ["warmup_cycles=60,0", "controller.k2=0.1"]
        assert args.rounds == 3
        assert args.eta == 4
        assert args.screen_cycles == 120
        assert args.guardband == 0.75
        assert args.store == "s.jsonl"
        assert args.output == "p.json"
        assert callable(args.func)

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.rounds == 2
        assert args.eta == 2
        assert args.screen_cycles == 0  # 0 -> cycles/4 at runtime
        assert args.store == "explore_store.jsonl"
        assert args.output == "pareto.json"

    def test_sweep_hardening_options(self):
        args = build_parser().parse_args(
            ["sweep", "--timeout", "30", "--retries", "2",
             "--backoff", "0.1", "--checkpoint", "ck.json", "--resume"]
        )
        assert args.timeout == 30.0
        assert args.retries == 2
        assert args.backoff == 0.1
        assert args.checkpoint == "ck.json"
        assert args.resume


class TestCommands:
    def test_benchmarks_lists_names(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "backprop" in out
        assert "fastwalsh" in out

    def test_benchmarks_suite_filter(self, capsys):
        main(["benchmarks", "--suite", "cuda_sdk"])
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "hotspot" not in out

    def test_size_reports_reduction(self, capsys):
        assert main(["size"]) == 0
        out = capsys.readouterr().out
        assert "area reduction" in out
        assert "x GPU die" in out

    def test_impedance_prints_curves(self, capsys):
        assert main(["impedance", "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert "Z_G" in out
        assert "Z_R_same" in out

    def test_cosim_short_run(self, capsys):
        assert main(["cosim", "heartwall", "--cycles", "400",
                     "--warmup", "100"]) == 0
        out = capsys.readouterr().out
        assert "heartwall" in out
        assert "PDE" in out

    def test_cosim_short_run_reports_na_kernel_time(self, capsys):
        """Runs too short to finish a kernel degrade to n/a, not a crash."""
        assert main(["cosim", "hotspot", "--cycles", "60",
                     "--warmup", "10"]) == 0
        out = capsys.readouterr().out
        assert "cycles/kernel n/a" in out

    def test_sweep_inline(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        assert main(["sweep", "--benchmarks", "hotspot,bfs",
                     "--areas", "105.8", "--cycles", "60", "--warmup", "10",
                     "--workers", "1", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "Sweep: 2 points, 0 failed" in out
        assert output.exists()

    def test_sweep_reports_failed_points(self, capsys):
        assert main(["sweep", "--benchmarks", "hotspot,__nope__",
                     "--areas", "105.8", "--cycles", "60", "--warmup", "10",
                     "--workers", "1", "--output", ""]) == 0
        out = capsys.readouterr().out
        assert "1 failed" in out
        assert "FAILED" in out and "__nope__" in out

    def test_explore_end_to_end_then_fully_cached(self, capsys, tmp_path):
        """``repro explore`` twice against one store: the repeat serves
        everything from cache and emits an identical frontier."""
        store = tmp_path / "store.jsonl"
        out1, out2 = tmp_path / "p1.json", tmp_path / "p2.json"
        argv = ["explore", "--benchmarks", "hotspot", "--areas", "105.8",
                "--axis", "seed=1,2", "--cycles", "60", "--warmup", "10",
                "--screen-cycles", "20", "--workers", "1",
                "--store", str(store)]
        assert main(argv + ["--output", str(out1)]) == 0
        first = capsys.readouterr().out
        assert "Pareto frontier" in first
        assert "pareto artifact written to" in first

        assert main(argv + ["--output", str(out2)]) == 0
        second = capsys.readouterr().out
        assert "0 simulated" in second

        doc1 = json.loads(out1.read_text())
        doc2 = json.loads(out2.read_text())
        assert doc1["artifact"] == "pareto"
        assert doc2["points_simulated"] == 0
        assert all(r["cache_hit_rate"] == 1.0 for r in doc2["rounds"])
        assert doc2["front"] == doc1["front"]

    def test_explore_bad_axis_spec_errors(self, capsys):
        assert main(["explore", "--axis", "nonsense"]) == 2
        assert "bad --axis" in capsys.readouterr().err

    def test_explore_unknown_axis_field_errors(self, capsys):
        assert main(["explore", "--axis", "no_such_knob=1,2",
                     "--cycles", "40", "--warmup", "10"]) == 2
        assert "exploration failed" in capsys.readouterr().err

    def test_size_uses_shared_die_area(self, capsys):
        from repro.pdn.parameters import GPU_DIE_AREA_MM2

        assert GPU_DIE_AREA_MM2 == 529.0
        assert main(["size"]) == 0

    def test_pde_breakdown(self, capsys):
        assert main(["pde", "hotspot", "--cycles", "600"]) == 0
        out = capsys.readouterr().out
        assert "VS cross-layer" in out
        assert "single layer VRM" in out


class TestTelemetryCommands:
    def test_run_writes_manifest_and_trace_renders_it(self, capsys, tmp_path):
        """The headline workflow: ``repro run --telemetry DIR`` then
        ``repro trace DIR``."""
        tele_dir = tmp_path / "tele"
        assert main(["run", "hotspot", "--cycles", "120", "--warmup", "20",
                     "--telemetry", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "telemetry written to" in out
        assert (tele_dir / "manifest.json").exists()
        assert (tele_dir / "events.jsonl").exists()

        assert main(["trace", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "run cosim-hotspot" in out
        assert "gpu_model" in out
        assert "transient_solve" in out
        assert "stage sum" in out

    def test_trace_missing_manifest_errors(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope")]) == 1
        assert "no telemetry manifest" in capsys.readouterr().err

    def test_sweep_telemetry(self, capsys, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["sweep", "--benchmarks", "hotspot",
                     "--areas", "105.8", "--cycles", "60", "--warmup", "10",
                     "--workers", "1", "--output", "",
                     "--telemetry", str(tele_dir)]) == 0
        assert (tele_dir / "manifest.json").exists()
        assert main(["trace", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "points_ok" in out
        assert "worker_utilization" in out

    def test_trace_notes_missing_events_log(self, capsys, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["run", "hotspot", "--cycles", "120", "--warmup", "20",
                     "--telemetry", str(tele_dir)]) == 0
        (tele_dir / "events.jsonl").unlink()
        assert main(["trace", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "note: events log missing" in out

    def test_trace_notes_truncated_events_log(self, capsys, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["run", "hotspot", "--cycles", "120", "--warmup", "20",
                     "--telemetry", str(tele_dir)]) == 0
        events = tele_dir / "events.jsonl"
        raw = events.read_text()
        events.write_text(raw[: len(raw) - 12])  # cut mid-JSON-object
        assert main(["trace", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "note: events log truncated" in out


class TestObservatoryCommands:
    @pytest.fixture()
    def run_pair(self, tmp_path, capsys):
        """Two telemetry runs of the same benchmark with the same seed."""
        dirs = []
        for name in ("base", "cand"):
            tele_dir = tmp_path / name
            assert main(["run", "hotspot", "--cycles", "200",
                         "--warmup", "40", "--seed", "7",
                         "--telemetry", str(tele_dir)]) == 0
            dirs.append(tele_dir)
        capsys.readouterr()  # drop run output
        return dirs

    def test_observe_renders_noise_report(self, capsys, run_pair):
        base, _ = run_pair
        assert main(["observe", str(base)]) == 0
        out = capsys.readouterr().out
        assert "run cosim-hotspot" in out
        assert "Band decomposition" in out
        assert "PDE loss ledger" in out
        assert "Per-layer current imbalance" in out

    def test_observe_without_noise_section_errors(self, capsys, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"run_id": "bare", "metrics": {}})
        )
        assert main(["observe", str(tmp_path)]) == 1
        assert "no noise section" in capsys.readouterr().err

    def test_compare_identical_seed_runs_passes(self, capsys, run_pair):
        base, cand = run_pair
        assert main(["compare", str(base), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out
        assert "REGRESSED" not in out

    def test_compare_flags_perturbed_headline_metric(self, capsys,
                                                     run_pair):
        base, cand = run_pair
        manifest_path = cand / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["metrics"]["min_voltage_v"] -= 0.05
        manifest_path.write_text(json.dumps(manifest))
        assert main(["compare", str(base), str(cand)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "min_voltage_v" in out

    def test_compare_custom_thresholds_file(self, capsys, tmp_path,
                                            run_pair):
        base, cand = run_pair
        manifest_path = cand / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["metrics"]["min_voltage_v"] -= 0.05
        manifest_path.write_text(json.dumps(manifest))
        thresholds = tmp_path / "thresholds.json"
        thresholds.write_text(json.dumps(
            {"min_voltage_v": {"better": "higher", "abs_tol": 0.2}}
        ))
        assert main(["compare", str(base), str(cand),
                     "--thresholds", str(thresholds)]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_compare_bad_thresholds_file_errors(self, capsys, tmp_path,
                                                run_pair):
        base, cand = run_pair
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"min_voltage_v": {"better": "sideways"}}))
        assert main(["compare", str(base), str(cand),
                     "--thresholds", str(bad)]) == 2
        assert capsys.readouterr().err != ""


class TestFaultCommands:
    def test_list_prints_canned_scenarios(self, capsys):
        assert main(["faults", "--list"]) == 0
        out = capsys.readouterr().out
        assert "guardband-breaker" in out
        assert "sensor-storm" in out

    def test_missing_scenario_errors(self, capsys):
        assert main(["faults"]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_unknown_scenario_errors(self, capsys):
        assert main(["faults", "__nope__"]) == 2
        assert "__nope__" in capsys.readouterr().err

    def test_short_scenario_run_prints_verdict(self, capsys):
        assert main(["faults", "sensor-storm", "--cycles", "150",
                     "--warmup", "30"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "min voltage" in out

    def test_expect_mismatch_fails(self, capsys):
        # With degradation on, the breaker scenario does NOT end violated.
        assert main(["faults", "guardband-breaker", "--cycles", "600",
                     "--warmup", "100", "--seed", "3",
                     "--expect", "violated"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_no_degradation_violates_breaker(self, capsys):
        assert main(["faults", "guardband-breaker", "--cycles", "600",
                     "--warmup", "100", "--seed", "3", "--no-degradation",
                     "--expect", "violated"]) == 0
        out = capsys.readouterr().out
        assert "verdict: violated" in out

    def test_json_scenario_file(self, capsys, tmp_path):
        from repro.faults import get_scenario

        path = tmp_path / "scenario.json"
        get_scenario("sensor-storm").to_json(path)
        assert main(["faults", str(path), "--cycles", "150",
                     "--warmup", "30"]) == 0
        assert "verdict:" in capsys.readouterr().out

    def test_bad_json_scenario_file_errors(self, capsys, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"events": [{"kind": "__nope__"}]}))
        assert main(["faults", str(path)]) == 2
        assert capsys.readouterr().err != ""

    def test_faults_telemetry_writes_faults_manifest(self, capsys, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["faults", "sensor-storm", "--cycles", "150",
                     "--warmup", "30", "--telemetry", str(tele_dir)]) == 0
        manifest = json.loads((tele_dir / "manifest.json").read_text())
        assert manifest["faults"]["schedule"] == "sensor-storm"
        assert "verdict" in manifest["faults"]
        capsys.readouterr()
        assert main(["trace", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "faults: schedule 'sensor-storm'" in out


class TestSweepHardeningCommands:
    def test_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        base_args = ["sweep", "--benchmarks", "hotspot",
                     "--areas", "105.8", "--cycles", "60", "--warmup", "10",
                     "--workers", "1", "--output", "",
                     "--checkpoint", str(ckpt)]
        assert main(base_args) == 0
        assert ckpt.exists()
        capsys.readouterr()
        assert main(base_args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming: 1/1 points already complete" in out

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["sweep", "--resume", "--workers", "1",
                     "--output", ""]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_trace_surfaces_point_notes(self, capsys, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["sweep", "--benchmarks", "hotspot",
                     "--areas", "105.8", "--cycles", "60", "--warmup", "10",
                     "--workers", "1", "--output", "",
                     "--telemetry", str(tele_dir)]) == 0
        capsys.readouterr()
        assert main(["trace", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "point #0 hotspot" in out
        assert "cycles_per_kernel unavailable" in out


class TestObservabilityCommands:
    def sweep_dir(self, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["sweep", "--benchmarks", "hotspot",
                     "--areas", "105.8", "--cycles", "60", "--warmup", "10",
                     "--workers", "1", "--output", "",
                     "--telemetry", str(tele_dir)]) == 0
        return tele_dir

    def test_top_once_renders_sweep_dir(self, capsys, tmp_path):
        tele_dir = self.sweep_dir(tmp_path)
        capsys.readouterr()
        assert main(["top", str(tele_dir), "--once", "--now", "5e9"]) == 0
        out = capsys.readouterr().out
        assert "1/1 (100%)" in out
        assert "Workers (1)" in out
        assert "sweep_done" in out

    def test_top_once_deterministic_under_injected_clock(self, capsys,
                                                         tmp_path):
        tele_dir = self.sweep_dir(tmp_path)
        capsys.readouterr()
        assert main(["top", str(tele_dir), "--once", "--now", "5e9"]) == 0
        first = capsys.readouterr().out
        assert main(["top", str(tele_dir), "--once", "--now", "5e9"]) == 0
        assert capsys.readouterr().out == first

    def test_top_marks_stale_workers(self, capsys, tmp_path):
        tele_dir = self.sweep_dir(tmp_path)
        capsys.readouterr()
        # Everything is stale from the far future...
        assert main(["top", str(tele_dir), "--once", "--now", "5e9"]) == 0
        assert "[STALE]" in capsys.readouterr().out
        # ...nothing is stale with an infinite threshold.
        assert main(["top", str(tele_dir), "--once", "--now", "5e9",
                     "--stale-after", "1e12"]) == 0
        assert "[STALE]" not in capsys.readouterr().out

    def test_top_empty_dir_graceful(self, capsys, tmp_path):
        assert main(["top", str(tmp_path), "--once", "--now", "0"]) == 0
        assert "no status.json yet" in capsys.readouterr().out

    def test_metrics_prometheus_text(self, capsys, tmp_path):
        tele_dir = self.sweep_dir(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sweep_points_done counter" in out
        assert "sweep_points_done 1" in out
        assert "sweep_point_elapsed_s_bucket" in out

    def test_metrics_without_status_errors(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path)]) == 1
        assert "no status.json" in capsys.readouterr().err

    def test_faults_run_dumps_flight_and_observe_renders_it(self, capsys,
                                                            tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["faults", "guardband-breaker", "--cycles", "600",
                     "--warmup", "100", "--seed", "3",
                     "--telemetry", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder:" in out
        dumps = sorted((tele_dir / "flight").glob("*.json"))
        assert dumps, "guardband-breaker must produce flight dumps"
        assert main(["observe", str(tele_dir)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder:" in out
        assert "guardband_onset" in out

    def test_cosim_telemetry_writes_flight_summary(self, capsys, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["cosim", "hotspot", "--cycles", "100",
                     "--warmup", "20", "--telemetry", str(tele_dir)]) == 0
        manifest = json.loads((tele_dir / "manifest.json").read_text())
        assert "flight" in manifest
        assert manifest["flight"]["cycles_observed"] == 120

    def test_explore_telemetry_publishes_live_plane(self, capsys, tmp_path):
        tele_dir = tmp_path / "tele"
        assert main(["explore", "--benchmarks", "hotspot",
                     "--areas", "52.9,105.8", "--cycles", "80",
                     "--warmup", "16", "--rounds", "1", "--workers", "1",
                     "--store", str(tmp_path / "store.jsonl"),
                     "--output", "", "--telemetry", str(tele_dir)]) == 0
        capsys.readouterr()
        assert main(["top", str(tele_dir), "--once", "--now", "5e9"]) == 0
        out = capsys.readouterr().out
        assert "explore round 1/1" in out
