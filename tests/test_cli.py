"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("benchmarks", "cosim", "impedance", "size", "pde"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_cosim_options(self):
        args = build_parser().parse_args(
            ["cosim", "bfs", "--cycles", "100", "--no-controller"]
        )
        assert args.benchmark == "bfs"
        assert args.cycles == 100
        assert args.no_controller


class TestCommands:
    def test_benchmarks_lists_names(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "backprop" in out
        assert "fastwalsh" in out

    def test_benchmarks_suite_filter(self, capsys):
        main(["benchmarks", "--suite", "cuda_sdk"])
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "hotspot" not in out

    def test_size_reports_reduction(self, capsys):
        assert main(["size"]) == 0
        out = capsys.readouterr().out
        assert "area reduction" in out
        assert "x GPU die" in out

    def test_impedance_prints_curves(self, capsys):
        assert main(["impedance", "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert "Z_G" in out
        assert "Z_R_same" in out

    def test_cosim_short_run(self, capsys):
        assert main(["cosim", "heartwall", "--cycles", "400",
                     "--warmup", "100"]) == 0
        out = capsys.readouterr().out
        assert "heartwall" in out
        assert "PDE" in out

    def test_pde_breakdown(self, capsys):
        assert main(["pde", "hotspot", "--cycles", "600"]) == 0
        out = capsys.readouterr().out
        assert "VS cross-layer" in out
        assert "single layer VRM" in out
