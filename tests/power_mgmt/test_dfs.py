"""Tests for the GRAPE-style DFS controller."""

import numpy as np
import pytest

from repro.power_mgmt.dfs import DFSConfig, GrapeDFSController


def calibrated(target=0.5):
    ctl = GrapeDFSController(performance_target=target)
    ctl.calibrate_baseline(np.full(16, 4000.0))
    return ctl


class TestConfig:
    def test_paper_constants(self):
        cfg = DFSConfig()
        assert cfg.step_hz == 50e6  # the paper's scaling step
        assert cfg.decision_period_cycles == 4096  # the paper's period

    def test_quantize_snaps_to_grid(self):
        cfg = DFSConfig()
        assert cfg.quantize(673e6) == pytest.approx(650e6)
        assert cfg.quantize(680e6) == pytest.approx(700e6)
        assert cfg.quantize(424e6) == pytest.approx(400e6)

    def test_quantize_clamps_to_range(self):
        cfg = DFSConfig()
        assert cfg.quantize(100e6) == pytest.approx(cfg.min_frequency_hz)
        assert cfg.quantize(900e6) == pytest.approx(cfg.nominal_frequency_hz)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_frequency_hz": 0.0},
            {"step_hz": -1.0},
            {"decision_period_cycles": 0},
            {"hysteresis": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DFSConfig(**kwargs)


class TestController:
    def test_requires_calibration(self):
        ctl = GrapeDFSController()
        with pytest.raises(RuntimeError, match="calibrate"):
            ctl.decide(np.full(16, 1000.0))

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            GrapeDFSController(performance_target=0.0)

    def test_below_target_steps_up(self):
        ctl = calibrated(target=0.5)
        ctl.frequencies_hz[:] = 400e6
        freqs = ctl.decide(np.full(16, 1000.0))  # 25% of baseline < 50%
        assert np.all(freqs == 450e6)

    def test_above_target_steps_down(self):
        ctl = calibrated(target=0.5)
        freqs = ctl.decide(np.full(16, 4000.0))  # 100% >> 50% * hysteresis
        assert np.all(freqs == 650e6)

    def test_within_band_holds(self):
        ctl = calibrated(target=0.5)
        ctl.frequencies_hz[:] = 400e6
        freqs = ctl.decide(np.full(16, 2050.0))  # just above target
        assert np.all(freqs == 400e6)

    def test_converges_to_low_frequency_for_low_target(self):
        ctl = calibrated(target=0.3)
        measured = np.full(16, 4000.0)
        for _ in range(20):
            freqs = ctl.decide(measured)
            # Proportional plant: throughput tracks frequency.
            measured = 4000.0 * freqs / 700e6
        assert freqs.mean() < 350e6

    def test_per_sm_independence(self):
        ctl = calibrated(target=0.5)
        measured = np.full(16, 4000.0)
        measured[3] = 100.0  # SM 3 is starved: must step up
        freqs = ctl.decide(measured)
        assert freqs[3] == 700e6  # already at max, clamped
        assert np.all(freqs[:3] == 650e6)

    def test_frequency_scales(self):
        ctl = calibrated()
        ctl.frequencies_hz[:] = 350e6
        assert np.allclose(ctl.frequency_scales(), 0.5)

    def test_shape_validation(self):
        ctl = calibrated()
        with pytest.raises(ValueError):
            ctl.decide(np.ones(4))
        with pytest.raises(ValueError):
            ctl.calibrate_baseline(np.ones(4))
        with pytest.raises(ValueError):
            ctl.calibrate_baseline(np.zeros(16))
