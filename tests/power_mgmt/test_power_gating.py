"""Tests for the Warped-Gates power gating controller."""

import pytest

from repro.gpu.isa import ExecUnit, InstructionClass
from repro.gpu.kernels import KernelSpec
from repro.gpu.memory import MemorySystem
from repro.gpu.scheduler import GatingAwareScheduler
from repro.gpu.sm import StreamingMultiprocessor
from repro.power_mgmt.power_gating import (
    PowerGatingConfig,
    WarpedGatesController,
)


def alu_only_sm(seed=0, scheduler=None):
    spec = KernelSpec(
        "alu_only", mix={InstructionClass.FALU: 1.0}, body_length=400,
        dependence=0.2,
    )
    return StreamingMultiprocessor(
        0, spec, MemorySystem(miss_ratio=0.0, seed=seed), seed=seed,
        scheduler=scheduler,
    )


def run_with_pg(sm, controller, cycles):
    for cycle in range(cycles):
        controller.step(cycle)
        sm.step(cycle)


class TestConfig:
    def test_defaults_valid(self):
        PowerGatingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"idle_detect_cycles": 0},
            {"break_even_cycles": 0},
            {"blackout_cycles": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PowerGatingConfig(**kwargs)


class TestGatingBehaviour:
    def test_idle_units_get_gated(self):
        sm = alu_only_sm(seed=1)
        pg = WarpedGatesController(sm)
        run_with_pg(sm, pg, 300)
        # SFU and LSU never used by an ALU-only kernel: both gated.
        assert ExecUnit.SFU in sm.gated_units
        assert ExecUnit.LSU in sm.gated_units
        assert pg.stats.gating_events >= 2

    def test_alu_not_gateable_by_default(self):
        sm = alu_only_sm(seed=2)
        pg = WarpedGatesController(sm)
        run_with_pg(sm, pg, 300)
        assert ExecUnit.ALU not in sm.gated_units

    def test_gated_cycles_accumulate(self):
        sm = alu_only_sm(seed=3)
        pg = WarpedGatesController(sm)
        run_with_pg(sm, pg, 500)
        assert pg.stats.gated_cycles[ExecUnit.SFU] > 300

    def test_demand_wakes_unit_after_blackout(self):
        spec = KernelSpec(
            "mixed",
            mix={InstructionClass.FALU: 0.7, InstructionClass.LOAD: 0.3},
            body_length=300,
        )
        sm = StreamingMultiprocessor(
            0, spec, MemorySystem(miss_ratio=0.0, seed=4), seed=4
        )
        pg = WarpedGatesController(sm)
        run_with_pg(sm, pg, 1500)
        # LSU is in demand: it must not be permanently gated and loads
        # must keep flowing.
        assert sm.stats.instructions_issued > 500

    def test_gating_saves_energy(self):
        sm = alu_only_sm(seed=5)
        pg = WarpedGatesController(sm)
        run_with_pg(sm, pg, 800)
        saved = pg.leakage_energy_saved_j(sm_leakage_w=1.2)
        assert saved > 0

    def test_energy_accounting_validates(self):
        pg = WarpedGatesController(alu_only_sm())
        with pytest.raises(ValueError):
            pg.leakage_energy_saved_j(sm_leakage_w=0.0)


class TestGATESIntegration:
    def test_scheduler_active_units_updated(self):
        scheduler = GatingAwareScheduler()
        sm = alu_only_sm(seed=6, scheduler=scheduler)
        pg = WarpedGatesController(sm)
        run_with_pg(sm, pg, 300)
        assert ExecUnit.SFU not in scheduler.active_units
        assert ExecUnit.ALU in scheduler.active_units
