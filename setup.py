"""Legacy setup shim.

Kept so the package installs in environments without the ``wheel``
module (where PEP 660 editable installs are unavailable):
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
