"""Imbalance-series decomposition performance.

Times the vectorized ``imbalance_series`` against the retained
per-cycle reference loop (``_imbalance_series_reference``) on a
2500-cycle x 16-SM power matrix, asserting both the speedup floor and
exact bit-compatibility (the vectorized path mirrors the reference's
reduction order, so every sample must match with ``np.array_equal``).

Writes ``benchmarks/results/perf_spectral.json`` so CI can upload the
cycles/s numbers as an artifact.
"""

import json
import time

import numpy as np

from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_table
from repro.analysis.spectral import (
    _imbalance_series_reference,
    imbalance_series,
)

CYCLES = 2500
TIMING_ROUNDS = 3
SPEEDUP_FLOOR = 10.0


def _power_matrix(cycles: int = CYCLES, seed: int = 23) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 8.0, (cycles, 16))


def _cycles_per_second(func, power: np.ndarray) -> float:
    """Best of TIMING_ROUNDS rounds (robust on a noisy shared core)."""
    func(power)  # warm caches / allocator
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        func(power)
        best = min(best, time.perf_counter() - start)
    return power.shape[0] / best


def test_bit_compatibility():
    power = _power_matrix()
    fast = imbalance_series(power)
    slow = _imbalance_series_reference(power)
    for name in ("global", "stack", "residual"):
        assert np.array_equal(fast[name], slow[name]), name


def test_imbalance_series_cycles_per_second(benchmark):
    power = _power_matrix()
    naive = benchmark.pedantic(
        _cycles_per_second, args=(_imbalance_series_reference, power),
        rounds=1, iterations=1,
    )
    fast = _cycles_per_second(imbalance_series, power)
    speedup = fast / naive
    emit(
        "Imbalance decomposition (2500x16 power matrix)",
        format_table(
            ["path", "cycles/s"],
            [
                ["per-cycle loop", f"{naive:,.0f}"],
                ["vectorized", f"{fast:,.0f}"],
                ["speedup", f"{speedup:.1f}x"],
            ],
            title="imbalance_series throughput",
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_spectral.json", "w") as handle:
        json.dump(
            {
                "matrix": f"{CYCLES}x16",
                "naive_cycles_per_s": naive,
                "vectorized_cycles_per_s": fast,
                "speedup": speedup,
                "floor": SPEEDUP_FLOOR,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    assert speedup >= SPEEDUP_FLOOR
