"""Exploration-service efficiency: halving + caching vs exhaustive.

The exploration service earns its keep two ways, and this driver gates
both on a small reference grid:

* **Successive halving** must full-length-simulate at most half the
  grid (screening happens at a quarter of the run length, so the
  cycle-weighted work is well below an exhaustive sweep's), and
* **the config-hash store** must make a repeat exploration free: the
  second run serves every point from cache and simulates nothing.

Writes ``benchmarks/results/perf_explore.json`` (simulated/served
counts, cycle-weighted work ratio, wall times) so CI can track the
service's efficiency as an artifact.
"""

import json
import time

from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_table
from repro.sim.cosim import CosimConfig
from repro.sim.explore import run_exploration

BENCHMARKS = ("hotspot", "bfs")
AXES = {
    "cr_ivr_area_mm2": [52.9, 105.8, 211.6],
    "seed": [3, 7],
}
BASE = CosimConfig(cycles=800, warmup_cycles=100)
SCREEN_CYCLES = 200
GRID_SIZE = len(BENCHMARKS) * len(AXES["cr_ivr_area_mm2"]) * len(AXES["seed"])


def _explore(store_path):
    start = time.perf_counter()
    result = run_exploration(
        BENCHMARKS, AXES, BASE, store_path=store_path,
        rounds=2, eta=2, screen_cycles=SCREEN_CYCLES, max_workers=1,
    )
    return result, time.perf_counter() - start


def test_exploration_halves_work_and_caches_the_rest(tmp_path):
    store = tmp_path / "store.jsonl"
    cold, cold_s = _explore(store)
    warm, warm_s = _explore(store)

    # Halving: the final (full-length) round covers at most half the grid.
    final = cold.rounds[-1]
    assert final.cycles == BASE.cycles
    full_length_points = final.simulated + final.served_from_cache
    assert full_length_points <= GRID_SIZE // 2

    # Cycle-weighted work vs an exhaustive full-length sweep of the grid.
    explored_cycles = sum(r.simulated * r.cycles for r in cold.rounds)
    exhaustive_cycles = GRID_SIZE * BASE.cycles
    work_ratio = explored_cycles / exhaustive_cycles
    assert work_ratio < 1.0

    # Caching: the repeat run is pure cache service.
    assert warm.num_simulated == 0
    assert warm.num_served == cold.num_simulated
    assert warm.front == cold.front

    rows = [
        ["grid points", str(GRID_SIZE), ""],
        ["cold: simulated", str(cold.num_simulated),
         f"{cold_s:.1f}s wall"],
        ["cold: full-length points", str(full_length_points),
         f"<= {GRID_SIZE // 2} (halving gate)"],
        ["cold: cycle-weighted work", f"{work_ratio:.0%}",
         "of exhaustive sweep"],
        ["warm: simulated", str(warm.num_simulated), "(cache gate: 0)"],
        ["warm: served from cache", str(warm.num_served),
         f"{warm_s:.2f}s wall"],
        ["frontier size", str(len(cold.front)), ""],
    ]
    table = format_table(
        ["quantity", "value", "note"], rows,
        title="Exploration service efficiency",
    )
    emit("perf_explore", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_explore.json", "w") as handle:
        json.dump({
            "grid_points": GRID_SIZE,
            "full_cycles": BASE.cycles,
            "screen_cycles": SCREEN_CYCLES,
            "cold_simulated": cold.num_simulated,
            "cold_full_length_points": full_length_points,
            "cold_work_ratio_vs_exhaustive": work_ratio,
            "cold_wall_s": cold_s,
            "warm_simulated": warm.num_simulated,
            "warm_served": warm.num_served,
            "warm_wall_s": warm_s,
            "front_size": len(cold.front),
        }, handle, indent=2)
        handle.write("\n")
