"""Co-simulation per-stage timing split via the telemetry recorder.

Runs one instrumented co-simulation and emits the wall-clock share of
each stage (GPU model / transient solve / controller / record), so a
slow run localizes to a layer instead of one opaque cycles/s number.
Also times an *uninstrumented* run of the same config to bound the
overhead of the telemetry hot-path branches.

Writes ``benchmarks/results/perf_cosim_stages.json`` so CI can upload
the timing split as an artifact.
"""

import json
import time

from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_seconds, format_table
from repro.sim.cosim import CosimConfig, run_cosim
from repro.telemetry import Telemetry

BENCHMARK = "hotspot"
CYCLES = 2000
WARMUP = 200
# The per-cycle timing adds five perf_counter reads; it must stay a
# small tax on the instrumented path (generous bound: shared CI cores).
MAX_OVERHEAD = 0.25
# The split must account for the run: residual stages (setup /
# loop_other / finalize) close the books to within this tolerance.
STAGE_SUM_TOLERANCE = 0.10
# With the vectorized GPU engine the architecture layer must no longer
# dominate the co-simulation: the transient solve is the rightful
# hotspot.
MAX_GPU_MODEL_SHARE = 0.40
# Best-of-N repeats for each timed leg: scheduler noise on shared CI
# cores would otherwise let a single slow plain run report a negative
# telemetry overhead.
TIMING_ROUNDS = 3


def _run(telemetry=None):
    config = CosimConfig(cycles=CYCLES, warmup_cycles=WARMUP, seed=11)
    start = time.perf_counter()
    run_cosim(BENCHMARK, config, telemetry=telemetry)
    return time.perf_counter() - start


def test_cosim_stage_split():
    _run()  # warm caches / allocator
    plain_s = min(_run() for _ in range(TIMING_ROUNDS))
    traced_s = float("inf")
    tele = None
    for _ in range(TIMING_ROUNDS):
        candidate = Telemetry(run_id="perf-stages")
        elapsed = _run(telemetry=candidate)
        if elapsed < traced_s:
            traced_s = elapsed
            tele = candidate
    wall = tele.elapsed_s
    stage_sum = sum(tele.timings.values())
    # Both legs are best-of-N minima of the same work, so the ratio is a
    # noise-resistant overhead estimate; clamp at zero because the true
    # overhead cannot be negative (any residual below zero is jitter).
    overhead = max(0.0, traced_s / plain_s - 1.0)

    rows = [
        [stage, format_seconds(seconds), f"{seconds / wall:.1%}"]
        for stage, seconds in sorted(
            tele.timings.items(), key=lambda kv: -kv[1]
        )
    ]
    rows.append(["(stage sum)", format_seconds(stage_sum),
                 f"{stage_sum / wall:.1%}"])
    emit(
        "Co-simulation stage timing split",
        format_table(
            ["stage", "time", "of wall"], rows,
            title=(
                f"{BENCHMARK}, {CYCLES}+{WARMUP} cycles "
                f"(wall {format_seconds(wall)}, "
                f"telemetry overhead {overhead:+.1%})"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_cosim_stages.json", "w") as handle:
        json.dump(
            {
                "benchmark": BENCHMARK,
                "cycles": CYCLES,
                "warmup_cycles": WARMUP,
                "wall_s": wall,
                "plain_s": plain_s,
                "traced_s": traced_s,
                "telemetry_overhead": overhead,
                "timings_s": dict(tele.timings),
                "stage_sum_s": stage_sum,
                "counters": dict(tele.counters),
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    assert abs(stage_sum - wall) / wall <= STAGE_SUM_TOLERANCE
    for stage in ("gpu_model", "transient_solve", "controller"):
        assert tele.timings[stage] > 0.0
    assert overhead <= MAX_OVERHEAD
    assert tele.timings["gpu_model"] / wall <= MAX_GPU_MODEL_SHARE
