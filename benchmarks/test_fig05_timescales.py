"""Figure 5 — timescales of power actuation mechanisms.

Regenerates the survey chart as a table and verifies the selection
logic: only mechanisms responding within ~100 cycles (an order of
magnitude faster than the low-frequency noise band) qualify as voltage
smoothing actuators — DIWS, FII and DCC.
"""

from conftest import emit
from repro.analysis.report import format_table
from repro.core.actuators import ACTUATION_TIMESCALES, smoothing_capable


def test_fig5_actuation_timescales(benchmark):
    def _table():
        rows = []
        for name, (lo, hi, usable) in sorted(
            ACTUATION_TIMESCALES.items(), key=lambda kv: kv[1][0]
        ):
            rows.append(
                [
                    name,
                    f"{lo:,}",
                    f"{hi:,}",
                    "yes" if usable else "no",
                ]
            )
        return rows

    rows = benchmark.pedantic(_table, rounds=1, iterations=1)
    emit(
        "Fig 5 actuation timescales",
        format_table(
            ["mechanism", "min cycles", "max cycles", "smoothing-capable"],
            rows,
            title="Fig 5: response timescales of power actuation mechanisms",
        ),
    )
    capable = smoothing_capable()
    assert set(capable) == {"diws", "fii", "dcc"}
    # Every capable mechanism is at least 10x faster than the slowest
    # non-capable one's floor (the order-of-magnitude rule).
    slow_floor = min(
        v[0] for k, v in ACTUATION_TIMESCALES.items() if not v[2]
    )
    for name, (lo, hi, _) in capable.items():
        assert hi * 10 <= slow_floor * 10  # capable ceilings within 100
        assert hi <= 100
