"""Observability hot-loop overhead gate.

The droop flight recorder rides inside the per-cycle co-simulation
loop on every telemetry-enabled run, so its ``observe()`` must be an
O(num_sms) row copy and its scan must amortize to nothing.  This
benchmark times the same co-simulation with and without a flight
recorder attached (no ``Telemetry``, so the recorder is the *only*
difference between the legs) and gates the overhead.

Writes ``benchmarks/results/perf_observability.json`` so CI can track
the number over time.
"""

import json
import time

from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_seconds, format_table
from repro.config import StackConfig
from repro.sim.cosim import CosimConfig, run_cosim
from repro.telemetry.flight import FlightRecorder

BENCHMARK = "hotspot"
CYCLES = 2500
WARMUP = 250
# The live plane must be cheap enough to leave on for every run: the
# flight recorder's per-cycle cost is gated at 2% of the plain loop.
MAX_OVERHEAD = 0.02
# Best-of-N repeats for each timed leg: scheduler noise on shared CI
# cores would otherwise dominate a single-shot 2% gate.
TIMING_ROUNDS = 3


def _run(flight=False):
    config = CosimConfig(cycles=CYCLES, warmup_cycles=WARMUP, seed=11)
    stack = StackConfig()
    recorder = None
    if flight:
        recorder = FlightRecorder(
            num_sms=stack.num_sms,
            guardband_v=stack.min_safe_voltage,
            cycle_offset=-WARMUP,
        )
    start = time.perf_counter()
    result = run_cosim(BENCHMARK, config, flight=recorder or False)
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_flight_recorder_overhead():
    _run()  # warm caches / allocator
    plain_s = min(_run()[0] for _ in range(TIMING_ROUNDS))
    flight_s = float("inf")
    flight_result = None
    for _ in range(TIMING_ROUNDS):
        elapsed, result = _run(flight=True)
        if elapsed < flight_s:
            flight_s = elapsed
            flight_result = result
    # Both legs are best-of-N minima of identical work, so the ratio is
    # a noise-resistant overhead estimate; clamp at zero because the
    # true overhead cannot be negative.
    overhead = max(0.0, flight_s / plain_s - 1.0)
    summary = flight_result.flight.summary()

    cycles_total = CYCLES + WARMUP
    rows = [
        ["plain loop", format_seconds(plain_s),
         f"{cycles_total / plain_s:,.0f} cyc/s"],
        ["with flight recorder", format_seconds(flight_s),
         f"{cycles_total / flight_s:,.0f} cyc/s"],
        ["overhead", f"{overhead:+.2%}", f"gate {MAX_OVERHEAD:.0%}"],
    ]
    emit(
        "Flight recorder hot-loop overhead",
        format_table(
            ["leg", "time", "rate"], rows,
            title=(
                f"{BENCHMARK}, {CYCLES}+{WARMUP} cycles, best of "
                f"{TIMING_ROUNDS} ({summary['onsets']} onset(s) observed)"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_observability.json", "w") as handle:
        json.dump(
            {
                "benchmark": BENCHMARK,
                "cycles": CYCLES,
                "warmup_cycles": WARMUP,
                "timing_rounds": TIMING_ROUNDS,
                "plain_s": plain_s,
                "flight_s": flight_s,
                "overhead": overhead,
                "max_overhead": MAX_OVERHEAD,
                "flight_summary": summary,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    assert overhead <= MAX_OVERHEAD, (
        f"flight recorder costs {overhead:.2%} of the plain co-sim loop "
        f"(gate {MAX_OVERHEAD:.0%}); observe()/scan() must stay O(num_sms)"
    )
