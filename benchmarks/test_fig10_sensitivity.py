"""Figure 10 — worst-case droop sensitivity to CR-IVR area and latency.

Regenerates both panels from the analytic worst-case model:
(a) worst voltage vs CR-IVR area budget at several control latencies;
(b) worst voltage vs control latency at several area budgets.

Paper findings asserted: beyond ~80 cycles of latency the 0.2x-area
system loses the guardband (knee in (b)); at 0.8x area and above the
system is insensitive to latency; the chosen design point (0.2x area,
60 cycles) meets the 0.2 V margin.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_series
from repro.pdn.area import AreaModel

GPU_DIE_MM2 = 529.0
MODEL = AreaModel()


def _panel_a():
    areas = np.linspace(0.05, 2.0, 40) * GPU_DIE_MM2
    latencies = [60, 80, 120, 140]
    return {
        "area_x_gpu": list(np.round(areas / GPU_DIE_MM2, 3)),
        **{
            f"worst_v_lat{lat}": [
                MODEL.worst_voltage_v(a, lat) for a in areas
            ]
            for lat in latencies
        },
    }


def _panel_b():
    latencies = np.linspace(20, 160, 36)
    areas_x = [2.0, 0.8, 0.4, 0.2]
    return {
        "latency_cycles": list(np.round(latencies, 1)),
        **{
            f"worst_v_area{ax}x": [
                MODEL.worst_voltage_v(ax * GPU_DIE_MM2, lat)
                for lat in latencies
            ]
            for ax in areas_x
        },
    }


def test_fig10a_area_sensitivity(benchmark):
    series = benchmark.pedantic(_panel_a, rounds=1, iterations=1)
    emit(
        "Fig 10(a) droop vs CR-IVR area",
        format_series(
            series,
            x_label="area_x_gpu",
            title="Fig 10(a): worst SM voltage vs CR-IVR area budget",
            max_points=14,
        ),
    )
    v60 = np.array(series["worst_v_lat60"])
    v140 = np.array(series["worst_v_lat140"])
    areas = np.array(series["area_x_gpu"])
    # Monotone in area; faster control is never worse.
    assert np.all(np.diff(v60) >= -1e-12)
    assert np.all(v60 >= v140 - 1e-12)
    # At the design point (0.2x, 60 cycles) the guardband holds...
    design = v60[np.argmin(np.abs(areas - 0.2))]
    assert design >= 0.8 - 1e-9
    # ...but not at 140 cycles with the same area (the (a)-panel knee).
    assert v140[np.argmin(np.abs(areas - 0.2))] < 0.8


def test_fig10b_latency_sensitivity(benchmark):
    series = benchmark.pedantic(_panel_b, rounds=1, iterations=1)
    emit(
        "Fig 10(b) droop vs control latency",
        format_series(
            series,
            x_label="latency_cycles",
            title="Fig 10(b): worst SM voltage vs control latency",
            max_points=14,
        ),
    )
    lat = np.array(series["latency_cycles"])
    v02 = np.array(series["worst_v_area0.2x"])
    v08 = np.array(series["worst_v_area0.8x"])
    # 0.2x area: safe at 60 cycles, broken past ~80 (the paper's knee).
    assert v02[np.argmin(np.abs(lat - 60))] >= 0.8 - 1e-9
    assert v02[np.argmin(np.abs(lat - 100))] < 0.8
    # 0.8x+ area: insensitive to latency across the sweep.
    assert np.all(v08 >= 0.8 - 1e-9)
