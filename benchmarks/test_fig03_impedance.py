"""Figure 3 — effective impedance of the voltage-stacked GPU.

Regenerates both panels: (a) the unregulated PDN's four impedance
curves (global, stack, residual same-layer, residual different-layer)
and (b) the same curves with an 88.3 mm^2 distributed CR-IVR attached,
showing the suppressed peaks.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_series
from repro.circuits.ac import log_frequency_grid
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.impedance import ImpedanceAnalyzer

# The paper's Fig. 3(b) attaches an 88.3 mm^2 on-chip CR-IVR.
FIG3B_AREA_MM2 = 88.3


def _curves(cr_area: float):
    pdn = build_stacked_pdn(cr_ivr_area_mm2=cr_area)
    analyzer = ImpedanceAnalyzer(pdn)
    freqs = log_frequency_grid(1e6, 5e8, points_per_decade=12)
    return analyzer.figure3_curves(freqs)


def test_fig3a_unregulated_impedance(benchmark):
    curves = benchmark.pedantic(_curves, args=(0.0,), rounds=1, iterations=1)
    emit(
        "Fig 3(a) impedance without CR-IVR",
        format_series(
            {
                "frequency_mhz": list(np.round(curves["frequency"] / 1e6, 2)),
                "Z_G": list(curves["z_global"]),
                "Z_ST": list(curves["z_stack"]),
                "Z_R_same": list(curves["z_residual_same_layer"]),
                "Z_R_diff": list(curves["z_residual_diff_layer"]),
            },
            x_label="frequency_mhz",
            title="Fig 3(a): effective impedance (ohm) vs frequency",
            max_points=18,
        ),
    )
    z_g = curves["z_global"]
    z_r = curves["z_residual_same_layer"]
    freqs = curves["frequency"]
    # Shape assertions: resonance near 70 MHz, dominant DC residual peak.
    peak_f = freqs[int(np.argmax(z_g))]
    assert 40e6 < peak_f < 120e6
    assert z_r[0] > 2 * z_g.max()


def test_fig3b_regulated_impedance(benchmark):
    regulated = benchmark.pedantic(
        _curves, args=(FIG3B_AREA_MM2,), rounds=1, iterations=1
    )
    bare = _curves(0.0)
    emit(
        "Fig 3(b) impedance with CR-IVR",
        format_series(
            {
                "frequency_mhz": list(np.round(regulated["frequency"] / 1e6, 2)),
                "Z_G//ivr": list(regulated["z_global"]),
                "Z_ST//ivr": list(regulated["z_stack"]),
                "Z_R_same//ivr": list(regulated["z_residual_same_layer"]),
                "Z_R_diff//ivr": list(regulated["z_residual_diff_layer"]),
            },
            x_label="frequency_mhz",
            title=f"Fig 3(b): effective impedance with {FIG3B_AREA_MM2} mm^2 CR-IVR",
            max_points=18,
        ),
    )
    # The CR-IVR must cut the residual low-frequency peak substantially.
    assert (
        regulated["z_residual_same_layer"][0]
        < 0.7 * bare["z_residual_same_layer"][0]
    )
