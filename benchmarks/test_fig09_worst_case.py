"""Figure 9 — transient voltage waveforms under the worst imbalance.

At a fixed time, every SM in the top layer is forced idle (the paper
"manually turns off SMs in one layer").  Four systems ride the event:

* circuit-only voltage stacking with 2x / 1x / 0.2x GPU-area CR-IVRs;
* the cross-layer solution at 0.2x area.

The paper's finding: circuit-only needs ~2x the GPU area to keep the
rail above 0.8 V, while the cross-layer controller achieves a similarly
stable rail at 0.2x — a ~90 % area reduction.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.gpu.isa import InstructionClass
from repro.gpu.kernels import KernelSpec
from repro.sim.cosim import CosimConfig, LayerShutoffEvent, run_cosim

GPU_DIE_MM2 = 529.0
EVENT_CYCLE = 700
CYCLES = 2200

# A steady, compute-saturated kernel: the clean synthetic conditions of
# the paper's manual worst-case test (no memory stalls or kernel
# boundaries inside the window, so the imbalance is purely the event).
STEADY_KERNEL = KernelSpec(
    "steady_compute",
    mix={InstructionClass.FALU: 0.7, InstructionClass.FMA: 0.3},
    dependence=0.1,
    warps_per_sm=16,
    body_length=3000,
)

SCENARIOS = [
    ("circuit only (2x GPU area)", 2.0 * GPU_DIE_MM2, False),
    ("circuit only (1x GPU area)", 1.0 * GPU_DIE_MM2, False),
    ("circuit only (0.2x GPU area)", 0.2 * GPU_DIE_MM2, False),
    ("cross layer (0.2x GPU area)", 0.2 * GPU_DIE_MM2, True),
]


def _run(area_mm2: float, use_controller: bool):
    return run_cosim(
        kernel=STEADY_KERNEL,
        config=CosimConfig(
            cycles=CYCLES,
            warmup_cycles=600,
            cr_ivr_area_mm2=area_mm2,
            use_controller=use_controller,
            shutoff=LayerShutoffEvent(layer=3, start_cycle=EVENT_CYCLE),
            seed=17,
        ),
    )


def test_fig9_worst_imbalance_waveforms(benchmark):
    results = benchmark.pedantic(
        lambda: {label: _run(a, c) for label, a, c in SCENARIOS},
        rounds=1,
        iterations=1,
    )
    rows = []
    settled_p5 = {}
    settled_median = {}
    for label, result in results.items():
        worst = result.worst_sm_voltage_trace()
        before = float(np.percentile(worst[:EVENT_CYCLE], 5))
        transient = float(worst[EVENT_CYCLE : EVENT_CYCLE + 400].min())
        tail = worst[-800:]
        settled_p5[label] = float(np.percentile(tail, 5))
        settled_median[label] = float(np.median(tail))
        rows.append(
            [
                label,
                f"{before:.3f}",
                f"{transient:.3f}",
                f"{settled_p5[label]:.3f}",
                f"{settled_median[label]:.3f}",
            ]
        )
    emit(
        "Fig 9 worst-imbalance transients",
        format_table(
            ["system", "V_p5 before", "V_min transient", "V_p5 settled",
             "V_median settled"],
            rows,
            title=(
                "Fig 9: minimum SM voltage around a whole-layer shutoff "
                f"at cycle {EVENT_CYCLE}"
            ),
        ),
    )

    # Paper shape: bigger circuit-only CR-IVR -> higher settled voltage.
    assert (
        settled_p5["circuit only (2x GPU area)"]
        > settled_p5["circuit only (1x GPU area)"]
        > settled_p5["circuit only (0.2x GPU area)"]
    )
    # 2x circuit-only holds a stable rail; 0.2x circuit-only collapses.
    assert settled_median["circuit only (2x GPU area)"] > 0.8
    assert settled_median["circuit only (0.2x GPU area)"] < 0.6
    # The cross-layer controller at 0.2x restores a rail far above the
    # circuit-only system of the same size (the ~90 % area-saving story).
    assert (
        settled_median["cross layer (0.2x GPU area)"]
        > settled_median["circuit only (0.2x GPU area)"] + 0.2
    )
    assert settled_median["cross layer (0.2x GPU area)"] > 0.8
    assert settled_p5["cross layer (0.2x GPU area)"] > 0.5
