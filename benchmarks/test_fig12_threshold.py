"""Figure 12 — performance penalty vs controller voltage threshold.

Sweeps V_threshold from 0.7 to 1.0 V with DIWS-only smoothing at the
performance-study gain and reports each benchmark subset's penalty
(mean kernel completion time vs the uncontrolled baseline) and the
fraction of cycles affected by throttling.

Paper shape: penalty grows monotonically with the threshold; at the
0.9 V default fewer than 20 % of cycles are affected.
"""

import numpy as np

from conftest import (PENALTY_CYCLES, PENALTY_MODE_K1, cosim_run, emit,
                      penalty_between)
from repro.analysis.metrics import performance_penalty
from repro.analysis.report import format_table

THRESHOLDS = [0.7, 0.8, 0.9, 0.95, 1.0]
# A representative subset spanning compute- and memory-bound behaviour.
SUBSET = ["heartwall", "hotspot", "srad", "blackscholes"]


def _sweep():
    rows = []
    curves = {}
    for name in SUBSET:
        base = cosim_run(
            name, use_controller=False, cycles=PENALTY_CYCLES
        )
        penalties = []
        for vth in THRESHOLDS:
            controlled = cosim_run(
                name,
                cycles=PENALTY_CYCLES,
                v_threshold=vth,
                k1=PENALTY_MODE_K1,
                slew=0.5,
                diws_only=True,
            )
            penalty = penalty_between(base, controlled)
            affected = controlled.throttled_cycles / controlled.num_cycles
            penalties.append(penalty)
            rows.append(
                [name, vth, f"{penalty:.2%}", f"{affected:.1%}"]
            )
        curves[name] = penalties
    return rows, curves


def test_fig12_threshold_sweep(benchmark):
    rows, curves = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Fig 12 threshold sweep",
        format_table(
            ["benchmark", "V_threshold", "performance penalty",
             "cycles affected"],
            rows,
            title="Fig 12: performance penalty vs controller threshold "
            f"(DIWS-only, k1={PENALTY_MODE_K1})",
        ),
    )
    for name, penalties in curves.items():
        # Monotone trend: the highest threshold costs at least as much
        # as the lowest (allowing simulation noise in the middle).
        assert penalties[-1] >= penalties[0] - 1e-9
        # Penalties stay in a sane band even at threshold 1.0.
        assert penalties[-1] < 0.30
    # At the 0.9 V default at least one compute-bound benchmark pays a
    # nonzero but small penalty.
    mid = [curves[n][2] for n in SUBSET]
    assert max(mid) < 0.10
