"""Regenerate the batched co-sim regression manifest.

Runs a fixed B=4 mixed-benchmark ``run_cosim_batch`` (the scenario the
checked-in ``benchmarks/baselines/BENCH_cosim_batch.json`` snapshot
captures) and writes a telemetry manifest whose headline ``metrics``
aggregate the worst/mean lane physics — exactly the keys the default
``repro compare`` thresholds gate.  CI re-runs this script and diffs
the fresh manifest against the snapshot, so any PR that drifts the
batched engine's physics (or quietly diverges/burns guard recoveries)
fails the gate.

Usage::

    PYTHONPATH=src python benchmarks/make_cosim_batch_baseline.py [out_dir]

To refresh the committed snapshot after an intentional physics change::

    PYTHONPATH=src python benchmarks/make_cosim_batch_baseline.py ci-batch-run
    cp ci-batch-run/manifest.json benchmarks/baselines/BENCH_cosim_batch.json
"""

import sys
from statistics import mean

CYCLES = 800
WARMUP = 200
LANES = (("hotspot", 1), ("bfs", 2), ("srad", 3), ("backprop", 4))


def main(out_dir: str) -> int:
    from repro.sim.cosim import CosimConfig, CosimLane, run_cosim_batch
    from repro.telemetry import Telemetry, write_run

    lanes = [
        CosimLane(
            benchmark=name,
            config=CosimConfig(cycles=CYCLES, warmup_cycles=WARMUP, seed=seed),
        )
        for name, seed in LANES
    ]
    tele = Telemetry(run_id="cosim-batch-baseline")
    results = run_cosim_batch(lanes, telemetry=tele)

    counters = tele.counters
    tele.set_metrics({
        "benchmark": "+".join(name for name, _ in LANES),
        # Zero-tolerance gates: any lane diverging or burning guard
        # recoveries on the baseline scenario is a regression.
        "diverged": float(sum(1 for r in results if r.diverged)),
        "guard_recoveries": float(
            counters.get("guard_refactor_recoveries", 0)
            + counters.get("guard_dt_halving_recoveries", 0)
        ),
        # Worst-lane extremes, lane-mean throughput/efficiency.
        "min_voltage_v": min(r.min_voltage for r in results),
        "max_voltage_v": max(r.max_voltage for r in results),
        "mean_power_w": mean(r.power_trace.mean_power_w for r in results),
        "pde": mean(r.efficiency().pde for r in results),
        "throughput_ipc": mean(r.throughput() for r in results),
        "mean_dcc_power_w": mean(r.mean_dcc_power_w for r in results),
    })
    from repro.sim.cosim import last_batch_solver_info

    info = last_batch_solver_info()
    manifest = write_run(
        tele, out_dir, config=lanes[0].config,
        extra={
            "command": "cosim-batch-baseline",
            "benchmark": "+".join(name for name, _ in LANES),
            "lane_seeds": [seed for _, seed in LANES],
            "solver_backend": info.get("backend"),
            "solver_shards": info.get("shards"),
        },
    )
    print(f"batched co-sim manifest written to {manifest}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "ci-batch-run"))
