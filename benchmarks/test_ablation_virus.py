"""Ablation — adversarial power viruses against the cross-layer system.

Drives the full co-simulation with the two microbenchmark attacks:

* the **global di/dt virus** pumps the package resonance (~63 MHz) —
  high-frequency noise that is the *CR-IVR/decap's* job (the controller
  cannot react at that timescale, and the noise does not depend on it);
* the **imbalance virus** alternates activity between stack layers at
  ~120 kHz, pumping the residual component — squarely in the band the
  paper assigns to the *architectural* layer, so the controller must
  visibly cut this noise.

This is the frequency-division-of-labor claim of the whole paper,
demonstrated with worst-case inputs.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.gpu import GPU, KernelSpec
from repro.workloads.microbenchmarks import didt_virus, imbalance_virus

CYCLES = 7000
WARMUP = 500


def _run_virus(virus, use_controller: bool, k1: float = 8.0):
    """A trimmed cosim loop with the virus envelope layered on DIWS.

    ``k1`` uses the deep-throttle gain: countering a deliberate
    adversarial imbalance needs stronger DIWS authority than the
    benign-workload default.
    """
    from repro.circuits import TransientSolver
    from repro.config import StackConfig, SystemConfig
    from repro.core.controller import (
        ControllerConfig,
        VoltageSmoothingController,
    )
    from repro.pdn.builder import build_stacked_pdn
    from repro.pdn.parameters import DEFAULT_PDN

    system = SystemConfig()
    stack = system.stack
    gpu = GPU(KernelSpec("virus_host", body_length=400, dependence=0.0),
              config=system, seed=3)
    pdn = build_stacked_pdn(stack=stack, cr_ivr_area_mm2=105.8)
    solver = TransientSolver(pdn.circuit, dt=system.gpu.cycle_time_s / 2)
    pdn.set_sm_currents(np.full(16, 4.0))
    solver.initialize_dc()
    controller = (
        VoltageSmoothingController(
            stack=stack,
            config=ControllerConfig(k1=k1),
            dt_s=system.gpu.cycle_time_s,
        )
        if use_controller
        else None
    )
    bias = DEFAULT_PDN.sm_conductance * stack.sm_voltage
    terminals = [pdn.sm_terminals(sm) for sm in range(16)]
    top_idx = np.array([solver.structure.node(t) for t, _ in terminals])
    bot_idx = np.array(
        [solver.structure.node(b) if b != "0" else 0 for _, b in terminals]
    )
    bot_ground = np.array([b == "0" for _, b in terminals])

    voltages = np.empty((CYCLES, 16))
    v_now = np.full(16, 1.0)
    for cycle in range(WARMUP + CYCLES):
        envelope = virus.widths(cycle)
        if controller is not None:
            controller.observe(cycle, v_now)
            decision = controller.commands_for(cycle)
            gpu.set_issue_widths(np.minimum(envelope, decision.issue_widths))
            gpu.set_fake_rates(decision.fake_rates)
        else:
            gpu.set_issue_widths(envelope)
        powers = gpu.step()
        pdn.set_sm_currents(
            np.maximum(powers / stack.sm_voltage - bias, 0.0)
        )
        for _ in range(2):
            node_v = solver.step()
        bottoms = np.where(bot_ground, 0.0, node_v[bot_idx])
        v_now = node_v[top_idx] - bottoms
        if cycle >= WARMUP:
            voltages[cycle - WARMUP] = v_now
    return voltages


def _experiment():
    rows = []
    stats = {}
    for label, virus in (
        ("global di/dt @63MHz", didt_virus()),
        ("imbalance @117kHz", imbalance_virus(period_cycles=6000, low_width=0.8)),
    ):
        for ctl in (False, True):
            v = _run_virus(virus, use_controller=ctl)
            # Judge the *tracked* steady state: the second half of each
            # virus half-period (transitions are bounded by the loop
            # latency and affect both systems alike).
            if virus.period_cycles >= 2000:
                settled = np.concatenate([v[1500:2900], v[4500:5900]])
            else:
                settled = v
            key = (label, ctl)
            stats[key] = (
                float(np.percentile(settled, 1)),
                float(settled.std()),
            )
            rows.append(
                [
                    label,
                    "cross-layer" if ctl else "circuit-only",
                    f"{stats[key][0]:.3f}",
                    f"{stats[key][1]:.4f}",
                ]
            )
    return rows, stats


def test_ablation_power_viruses(benchmark):
    rows, stats = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit(
        "Ablation: power viruses",
        format_table(
            ["virus", "system", "V p1", "noise std"],
            rows,
            title="Adversarial viruses: who handles which frequency band",
        ),
    )
    # The imbalance virus is the band the controller owns: it must cut
    # the noise substantially.
    imb_no = stats[("imbalance @117kHz", False)]
    imb_ctl = stats[("imbalance @117kHz", True)]
    assert imb_ctl[1] < 0.85 * imb_no[1]
    assert imb_ctl[0] > imb_no[0] + 0.05
    # The global virus lives above the controller's bandwidth: no
    # cycle-level correction of a 63 MHz waveform is possible through a
    # 60-cycle loop, though the controller may still blunt the virus's
    # *envelope* by throttling average activity.  Required: it never
    # makes the resonance noise worse.
    glob_no = stats[("global di/dt @63MHz", False)]
    glob_ctl = stats[("global di/dt @63MHz", True)]
    assert glob_ctl[1] <= glob_no[1] * 1.1
    assert glob_ctl[0] >= glob_no[0] - 0.02