"""Shared fixtures for the reproduction benchmark harness.

Heavy artefacts (GPU power traces, co-simulation runs) are cached at
session scope and shared across the table/figure benchmarks, so the
whole harness regenerates every figure in a few minutes.  Each driver
prints its paper-style table through ``emit`` (captured by pytest; run
with ``-s`` to stream) and also appends it to
``benchmarks/results/report.txt``.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig
from repro.gpu.gpu import GPU
from repro.sim.cosim import CosimConfig, CosimResult, run_cosim
from repro.workloads.benchmarks import BENCHMARK_NAMES, get_benchmark
from repro.workloads.traces import PowerTrace, capture_trace

RESULTS_DIR = Path(__file__).parent / "results"

# Run lengths: long enough for several kernel launches per benchmark,
# short enough that the full harness stays in the minutes range.
TRACE_CYCLES = 4000
COSIM_CYCLES = 2500
PENALTY_CYCLES = 8000
SEED = 11

# Deeper DIWS gain used by the performance studies (Figs. 12-14): the
# throttle must bite below the issue rate for its cost to be visible.
PENALTY_MODE_K1 = 15.0
DIWS_ONLY = WeightedActuation(w1=1.0, w2=0.0, w3=0.0)


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "report.txt", "a") as handle:
        handle.write(f"\n===== {name} =====\n{text}\n")


@functools.lru_cache(maxsize=None)
def benchmark_trace(name: str, cycles: int = TRACE_CYCLES) -> PowerTrace:
    """GPU-only power trace of a paper benchmark (no PDN coupling)."""
    spec = get_benchmark(name)
    gpu = GPU(
        spec.kernel,
        config=SystemConfig(),
        seed=SEED,
        miss_ratio=spec.miss_ratio,
        jitter=spec.jitter,
    )
    return capture_trace(gpu, cycles, warmup_cycles=300, name=name)


@functools.lru_cache(maxsize=None)
def cosim_run(
    name: str,
    use_controller: bool = True,
    cr_ivr_area_mm2: float = 105.8,
    cycles: int = COSIM_CYCLES,
    v_threshold: float = 0.9,
    k1: float = 2.0,
    diws_only: bool = False,
    weights: tuple = None,
    slew: float = 0.02,
    seed: int = SEED,
) -> CosimResult:
    """Cached co-simulation with the common knob set.

    ``weights`` is an optional (w1, w2, w3) actuation mix (Fig. 13);
    ``diws_only`` is shorthand for (1, 0, 0).
    """
    if weights is not None and diws_only:
        raise ValueError("pass either weights or diws_only, not both")
    actuation = None
    if diws_only:
        actuation = DIWS_ONLY
    elif weights is not None:
        actuation = WeightedActuation(*weights)
    config = CosimConfig(
        cycles=cycles,
        warmup_cycles=200,
        cr_ivr_area_mm2=cr_ivr_area_mm2,
        use_controller=use_controller,
        controller=ControllerConfig(
            v_threshold=v_threshold, k1=k1, slew_per_decision=slew
        ),
        seed=seed,
        **({"actuation": actuation} if actuation is not None else {}),
    )
    return run_cosim(name, config)


def penalty_between(base: CosimResult, controlled: CosimResult) -> float:
    """Performance penalty of ``controlled`` vs ``base``.

    Prefers the kernel-completion-time ratio (robust to tail slack);
    falls back to the throughput ratio when a long-kernel benchmark
    completes fewer than two launches inside the window.
    """
    try:
        ratio = controlled.cycles_per_kernel() / base.cycles_per_kernel()
    except ValueError:
        ratio = base.throughput() / max(controlled.throughput(), 1e-9)
    return max(0.0, ratio - 1.0)


@pytest.fixture(scope="session")
def all_benchmarks():
    return list(BENCHMARK_NAMES)
