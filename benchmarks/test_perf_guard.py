"""Solver guard-rail hot-loop overhead gate.

The numerical guard (:class:`repro.circuits.transient.SolverGuard`)
wraps every co-sim cycle's transient substeps on every default run, so
its clean path must be almost free: two reactive-state snapshot copies
and one sum-of-squares health proof per cycle, riding the fused
``TransientSolver.step_n`` substep loop (whose hoisted dispatch pays
for the bookkeeping).  This benchmark times the same co-simulation
with the guard on (default) and off (``solver_guard=False`` — the
only difference between the legs), gates the overhead, and asserts
the guarded waveform is bit-identical to the unguarded one on a
healthy run.

Writes ``benchmarks/results/perf_guard.json`` so CI can track the
number over time.
"""

import json
import time

import numpy as np
from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_seconds, format_table
from repro.sim.cosim import CosimConfig, run_cosim

BENCHMARK = "hotspot"
CYCLES = 2500
WARMUP = 250
# The guard runs on every default co-sim: its clean path is gated at
# 2% of the unguarded loop.
MAX_OVERHEAD = 0.02
# Paired, interleaved rounds: scheduler noise on shared CI cores would
# otherwise dominate a single-shot 2% gate.
TIMING_ROUNDS = 5


def _run(guard: bool):
    config = CosimConfig(
        cycles=CYCLES, warmup_cycles=WARMUP, seed=11, solver_guard=guard
    )
    start = time.perf_counter()
    result = run_cosim(BENCHMARK, config)
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_solver_guard_overhead():
    _run(guard=False)  # warm caches / allocator
    _run(guard=True)
    # Interleave the legs and pair each round's ratio: back-to-back
    # runs see near-identical machine conditions, so a load epoch that
    # spans one round inflates that round's ratio but cannot deflate a
    # clean one — the minimum ratio is the noise-resistant overhead
    # estimate (systematic overhead shows up in every round, including
    # the minimum).  Clamp at zero: true overhead cannot be negative.
    ratios = []
    plain_s = guarded_s = float("inf")
    plain_result = guarded_result = None
    for _ in range(TIMING_ROUNDS):
        p_elapsed, plain_result = _run(guard=False)
        g_elapsed, guarded_result = _run(guard=True)
        ratios.append(g_elapsed / p_elapsed)
        plain_s = min(plain_s, p_elapsed)
        guarded_s = min(guarded_s, g_elapsed)
    overhead = max(0.0, min(ratios) - 1.0)

    # The guard must be *observationally* free too: a healthy run's
    # waveforms are bit-identical with and without it.
    assert not guarded_result.diverged
    assert np.array_equal(
        guarded_result.sm_voltages, plain_result.sm_voltages
    ), "guard perturbed a healthy run's voltages"
    assert np.array_equal(
        guarded_result.supply_current, plain_result.supply_current
    )

    cycles_total = CYCLES + WARMUP
    rows = [
        ["unguarded loop", format_seconds(plain_s),
         f"{cycles_total / plain_s:,.0f} cyc/s"],
        ["with solver guard", format_seconds(guarded_s),
         f"{cycles_total / guarded_s:,.0f} cyc/s"],
        ["overhead", f"{overhead:+.2%}", f"gate {MAX_OVERHEAD:.0%}"],
    ]
    emit(
        "Solver guard hot-loop overhead",
        format_table(
            ["leg", "time", "rate"], rows,
            title=(
                f"{BENCHMARK}, {CYCLES}+{WARMUP} cycles, best of "
                f"{TIMING_ROUNDS} (bit-identity checked)"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_guard.json", "w") as handle:
        json.dump(
            {
                "benchmark": BENCHMARK,
                "cycles": CYCLES,
                "warmup_cycles": WARMUP,
                "timing_rounds": TIMING_ROUNDS,
                "unguarded_s": plain_s,
                "guarded_s": guarded_s,
                "overhead": overhead,
                "max_overhead": MAX_OVERHEAD,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    assert overhead <= MAX_OVERHEAD, (
        f"solver guard costs {overhead:.2%} of the unguarded co-sim loop "
        f"(gate {MAX_OVERHEAD:.0%}); the clean path must stay two state "
        "copies and one peak scan per cycle"
    )
