"""Figure 14 — performance penalty and net energy saving per benchmark.

Runs every benchmark with the default cross-layer configuration
(DIWS-only smoothing at the 0.9 V threshold, per Section VI-C) against
the uncontrolled baseline, and reports the per-benchmark performance
penalty and the net energy saving over the conventional VRM PDS.

Paper bands: penalties within 2-4 %, net savings 10-15 %.
"""

import numpy as np

from conftest import (PENALTY_CYCLES, PENALTY_MODE_K1, cosim_run, emit,
                      penalty_between)
from repro.analysis.metrics import net_energy_saving
from repro.analysis.report import format_table
from repro.pdn.efficiency import pde_conventional
from repro.workloads.benchmarks import BENCHMARK_NAMES


def _per_benchmark():
    rows = []
    penalties, savings = [], []
    for name in BENCHMARK_NAMES:
        base = cosim_run(name, use_controller=False, cycles=PENALTY_CYCLES)
        run = cosim_run(
            name,
            cycles=PENALTY_CYCLES,
            k1=PENALTY_MODE_K1,
            slew=0.5,
            diws_only=True,
        )
        penalty = penalty_between(base, run)
        pde_base = pde_conventional(base.power_trace.mean_power_w).pde
        pde_vs = run.efficiency().pde
        saving = net_energy_saving(pde_base, pde_vs, penalty)
        penalties.append(penalty)
        savings.append(saving)
        rows.append(
            [name, f"{penalty:.2%}", f"{saving:.2%}", f"{pde_vs:.1%}"]
        )
    return rows, np.array(penalties), np.array(savings)


def test_fig14_penalty_and_saving(benchmark):
    rows, penalties, savings = benchmark.pedantic(
        _per_benchmark, rounds=1, iterations=1
    )
    emit(
        "Fig 14 penalty and net saving",
        format_table(
            ["benchmark", "performance penalty", "net energy saving", "PDE"],
            rows,
            title="Fig 14: performance loss and net energy saving "
            "(cross-layer VS vs conventional PDS)",
        ),
    )
    # Paper: penalties distributed within 2-4 %.  Our cleaner supply
    # throttles less, so we accept the 0-6 % band and assert the core
    # claim: the penalty is small for every benchmark.
    assert float(penalties.max()) < 0.06
    # Net savings: the paper's 10-15 % band (we allow 8-18 %).
    assert np.all(savings > 0.08)
    assert np.all(savings < 0.18)
    assert 0.10 < float(savings.mean()) < 0.16
