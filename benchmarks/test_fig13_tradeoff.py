"""Figure 13 — energy-saving / performance-penalty trade-off space.

Sweeps the weighted control input (eq. 9) over the actuation mixes the
paper plots — pure DIWS, pure FII, pure DCC, and the 0.8/0.2 blends —
and reports each point's performance penalty and net energy saving
relative to the conventional PDS.

Paper shape: DIWS reaches the highest net savings (throttling spends no
extra power); FII and DCC trade some saving for lower penalty (they add
power instead of removing work); DCC is dominated by FII wherever FII
slack exists (DCC burns leakage and area).
"""

import numpy as np

from conftest import (PENALTY_CYCLES, PENALTY_MODE_K1, cosim_run, emit,
                      penalty_between)
from repro.analysis.metrics import net_energy_saving
from repro.analysis.report import format_table
from repro.core.actuators import CurrentCompensationDAC
from repro.pdn.efficiency import pde_conventional

MIXES = [
    ("DIWS", (1.0, 0.0, 0.0)),
    ("FII", (0.0, 1.0, 0.0)),
    ("DCC", (0.0, 0.0, 1.0)),
    ("0.8DIWS+0.2FII", (0.8, 0.2, 0.0)),
    ("0.8DIWS+0.2DCC", (0.8, 0.0, 0.2)),
]
BENCH = "heartwall"  # compute-bound: actuation differences are visible
V_THRESHOLD = 0.95  # engage the smoothing often enough to differentiate


def _tradeoff():
    base = cosim_run(BENCH, use_controller=False, cycles=PENALTY_CYCLES)
    base_power = base.power_trace.mean_power_w
    pde_base = pde_conventional(base_power).pde
    dac_leakage = CurrentCompensationDAC().leakage_w * 16
    points = {}
    rows = []
    for label, weights in MIXES:
        run = cosim_run(
            BENCH,
            cycles=PENALTY_CYCLES,
            v_threshold=V_THRESHOLD,
            k1=PENALTY_MODE_K1,
            slew=0.5,
            weights=weights,
        )
        penalty = penalty_between(base, run)
        extra_dynamic = max(
            0.0, run.power_trace.mean_power_w / base_power - 1
        )
        # DCC compensation current and DAC leakage are drawn outside
        # the GPU's own power trace; charge them here.
        extra_dynamic += run.mean_dcc_power_w / base_power
        if weights[2] > 0:
            extra_dynamic += dac_leakage / base_power
        pde_vs = run.efficiency().pde
        saving = net_energy_saving(
            pde_base, pde_vs, penalty, extra_dynamic_fraction=extra_dynamic
        )
        points[label] = (penalty, saving)
        rows.append([label, f"{penalty:.2%}", f"{saving:.2%}", f"{pde_vs:.1%}"])
    return rows, points


def test_fig13_tradeoff_space(benchmark):
    rows, points = benchmark.pedantic(_tradeoff, rounds=1, iterations=1)
    emit(
        "Fig 13 trade-off space",
        format_table(
            ["actuation mix", "performance penalty", "net energy saving",
             "PDE"],
            rows,
            title=(
                "Fig 13: energy saving vs performance penalty across "
                f"actuation mixes ({BENCH}, V_th={V_THRESHOLD})"
            ),
        ),
    )
    # Every mix still nets a positive saving over the conventional PDS.
    for label, (_, saving) in points.items():
        assert saving > 0.05, label
    # The power-adding mechanisms cost less performance than throttling
    # (the paper: "FII and DCC can deliver a lower performance penalty").
    assert points["FII"][0] <= points["DIWS"][0] + 1e-9
    assert points["DCC"][0] <= points["DIWS"][0] + 1e-9
    # DCC never beats FII once its DAC area/leakage cost is charged
    # (the paper: "DCC is usually an inferior mechanism when FII can be
    # applied").
    assert points["FII"][1] >= points["DCC"][1] - 0.01
    # Blends interpolate: the 0.8/0.2 mixes sit between the pure points
    # in penalty.
    for blend in ("0.8DIWS+0.2FII", "0.8DIWS+0.2DCC"):
        assert points[blend][0] <= points["DIWS"][0] + 1e-9
