"""Table III — comparison of the four power delivery subsystems.

Rebuilds the table's two columns (PDE and die-area overhead) from our
models: PDE averaged over the twelve benchmarks' measured traces, and
CR-IVR/IVR area from the sizing model.
"""

import numpy as np

from conftest import benchmark_trace, emit
from repro.analysis.report import format_table
from repro.config import StackConfig
from repro.pdn.efficiency import (
    layer_shuffle_power,
    pde_conventional,
    pde_single_ivr,
    pde_voltage_stacked,
)
from repro.sim.pds_configs import PDS_CONFIGS, PDSKind
from repro.workloads.benchmarks import BENCHMARK_NAMES

GPU_DIE_MM2 = 529.0
SINGLE_IVR_AREA_MM2 = 172.3  # Table III's single-layer IVR overhead


def _average_pdes():
    """Mean PDE per configuration across the benchmark suite."""
    results = {kind: [] for kind in PDSKind}
    for name in BENCHMARK_NAMES:
        trace = benchmark_trace(name)
        load = trace.mean_power_w
        shuffle = layer_shuffle_power(trace.data, StackConfig())
        results[PDSKind.CONVENTIONAL_VRM].append(pde_conventional(load).pde)
        results[PDSKind.SINGLE_LAYER_IVR].append(pde_single_ivr(load).pde)
        results[PDSKind.VS_CIRCUIT_ONLY].append(
            pde_voltage_stacked(load, shuffle).pde
        )
        results[PDSKind.VS_CROSS_LAYER].append(
            pde_voltage_stacked(
                load, shuffle, controller_power_w=1.634e-3
            ).pde
        )
    return {kind: float(np.mean(v)) for kind, v in results.items()}


def test_table3_pds_comparison(benchmark):
    pdes = benchmark.pedantic(_average_pdes, rounds=1, iterations=1)
    rows = []
    paper_pde = {}
    for kind, entry in PDS_CONFIGS.items():
        if kind is PDSKind.CONVENTIONAL_VRM:
            area = "N/A"
        elif kind is PDSKind.SINGLE_LAYER_IVR:
            area = f"{SINGLE_IVR_AREA_MM2:.1f} mm2 ({SINGLE_IVR_AREA_MM2/GPU_DIE_MM2:.2f}x die)"
        else:
            area = (
                f"{entry.cr_ivr_area_mm2:.1f} mm2 "
                f"({entry.cr_ivr_area_mm2/GPU_DIE_MM2:.2f}x die)"
            )
        rows.append(
            [
                entry.label,
                f"{pdes[kind]:.1%}",
                f"{entry.paper_pde:.1%}",
                area,
                f"{entry.paper_area_x_die:.2f}x die",
            ]
        )
        paper_pde[kind] = entry.paper_pde
    emit(
        "Table III PDS comparison",
        format_table(
            ["PDS configuration", "PDE (measured)", "PDE (paper)",
             "Die area (measured)", "Area (paper)"],
            rows,
            title="Table III: comparison of power delivery subsystems",
        ),
    )

    # Shape assertions against the paper's anchors.
    assert abs(pdes[PDSKind.CONVENTIONAL_VRM] - 0.80) < 0.03
    assert abs(pdes[PDSKind.SINGLE_LAYER_IVR] - 0.85) < 0.03
    assert pdes[PDSKind.VS_CROSS_LAYER] > 0.90
    assert (
        pdes[PDSKind.CONVENTIONAL_VRM]
        < pdes[PDSKind.SINGLE_LAYER_IVR]
        < pdes[PDSKind.VS_CROSS_LAYER]
    )
    # Area ordering and the 88 % reduction headline.
    circuit = PDS_CONFIGS[PDSKind.VS_CIRCUIT_ONLY].cr_ivr_area_mm2
    cross = PDS_CONFIGS[PDSKind.VS_CROSS_LAYER].cr_ivr_area_mm2
    assert circuit > GPU_DIE_MM2  # bigger than the GPU itself
    assert 1 - cross / circuit > 0.80


def test_headline_loss_elimination(benchmark):
    """The 61.5 % total-PDS-loss elimination headline."""

    def loss_cut():
        trace = benchmark_trace("hotspot")
        load = trace.mean_power_w
        shuffle = layer_shuffle_power(trace.data, StackConfig())
        conv = pde_conventional(load)
        stacked = pde_voltage_stacked(load, shuffle, controller_power_w=1.634e-3)
        return 1 - (stacked.total_loss / stacked.useful_power) / (
            conv.total_loss / conv.useful_power
        )

    cut = benchmark.pedantic(loss_cut, rounds=1, iterations=1)
    emit(
        "Headline loss elimination",
        f"PDS loss eliminated vs conventional: {cut:.1%} (paper: 61.5%)",
    )
    assert cut > 0.5
