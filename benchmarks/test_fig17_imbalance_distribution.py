"""Figure 17 — distribution of imbalanced currents between stacked SMs.

For the no-power-management case, DFS at three performance goals, and
power gating, prints the paper's four-bucket histogram (0-10 / 10-20 /
20-40 / >40 % of peak SM current) for the most imbalanced benchmark,
the suite average, and the most uniform benchmark.

Paper anchors asserted: with no PM, ~50 % of cycle-pairs sit below 10 %
imbalance and >=90 % below 40 %; DFS and PG do not fundamentally
disturb the balance.
"""

import numpy as np

from conftest import benchmark_trace, emit
from repro.analysis.metrics import (
    IMBALANCE_BUCKET_LABELS,
    cumulative_within,
    imbalance_distribution,
)
from repro.analysis.report import format_table
from repro.sim.power_experiments import run_dfs_experiment, run_pg_experiment
from repro.workloads.benchmarks import BENCHMARK_NAMES

WORST = "backprop"  # the paper's BACKP column
BEST = "heartwall"


def _suite_average_distribution():
    shares = None
    for name in BENCHMARK_NAMES:
        dist = imbalance_distribution(benchmark_trace(name).data)
        if shares is None:
            shares = {k: v / len(BENCHMARK_NAMES) for k, v in dist.items()}
        else:
            for k, v in dist.items():
                shares[k] += v / len(BENCHMARK_NAMES)
    return shares


def _distributions():
    rows = []
    cases = {}

    def add(policy, label, dist):
        cases[(policy, label)] = dist
        rows.append(
            [policy, label]
            + [f"{dist[bucket]:.1%}" for bucket in IMBALANCE_BUCKET_LABELS]
        )

    # No power management.
    add("No PM", WORST, imbalance_distribution(benchmark_trace(WORST).data))
    add("No PM", "average", _suite_average_distribution())
    add("No PM", BEST, imbalance_distribution(benchmark_trace(BEST).data))

    # DFS at the paper's three performance goals (suite-representative
    # benchmark for tractability).
    for target in (0.7, 0.5, 0.2):
        run = run_dfs_experiment(
            "hotspot", performance_target=target, stacked=True,
            cycles=3 * 4096,
        )
        add(f"DFS {target:.0%}", "hotspot", imbalance_distribution(run.trace))

    # Power gating.
    pg = run_pg_experiment("hotspot", stacked=True, cycles=5000)
    add("PG", "hotspot", imbalance_distribution(pg.trace))
    return rows, cases


def test_fig17_imbalance_distribution(benchmark):
    rows, cases = benchmark.pedantic(_distributions, rounds=1, iterations=1)
    emit(
        "Fig 17 imbalance distribution",
        format_table(
            ["power mgmt", "benchmark"] + list(IMBALANCE_BUCKET_LABELS),
            rows,
            title="Fig 17: vertical SM current-imbalance distribution",
        ),
    )
    average = cases[("No PM", "average")]
    # Paper: 50 % of the time below 10 % imbalance, 93 % below 40 %.
    assert average["0-10% imbalance"] > 0.40
    assert (
        cumulative_within(
            average,
            ["0-10% imbalance", "10-20% imbalance", "20-40% imbalance"],
        )
        > 0.85
    )
    # Every benchmark (including the extremes) is overwhelmingly
    # balanced.  (The paper's exact best/worst per-benchmark ordering
    # depends on trace details our synthetic workloads do not pin down;
    # EXPERIMENTS.md discusses the difference.)
    for label in (WORST, BEST):
        assert cases[("No PM", label)]["0-10% imbalance"] > 0.40
    # DFS and PG keep the distribution overwhelmingly balanced — the
    # paper's collaborative-compatibility conclusion.
    for key, dist in cases.items():
        assert (
            cumulative_within(
                dist,
                ["0-10% imbalance", "10-20% imbalance", "20-40% imbalance"],
            )
            > 0.75
        ), key
