"""Transient-solver hot-path performance on the production netlist.

Times the vectorized scatter/gather stepping path against the retained
naive per-element loop on the full 4x4 stacked PDN, asserting both the
speedup floor and bit-compatibility (the vectorized path emits its RHS
accumulation in the naive path's execution order, so the waveforms
must agree to well below 1e-12 — in practice exactly).

Writes ``benchmarks/results/perf_solver.json`` so CI can upload the
steps/s numbers as an artifact.
"""

import json
import time

import numpy as np

from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_table
from repro.circuits import TransientSolver
from repro.pdn.builder import build_stacked_pdn

DT = 1e-10
COMPARE_STEPS = 400
TIMING_ROUNDS = 3
SPEEDUP_FLOOR = 3.0


def _make(vectorized: bool):
    pdn = build_stacked_pdn()
    solver = TransientSolver(pdn.circuit, dt=DT, vectorized=vectorized)
    solver.initialize_dc()
    return pdn, solver


def _drive(pdn, solver, steps: int, seed: int = 11) -> np.ndarray:
    """Step with a reproducible random load; return the solution trace."""
    rng = np.random.default_rng(seed)
    trace = np.empty((steps, solver.structure.num_nodes))
    for k in range(steps):
        pdn.set_sm_currents(1.0 + 0.5 * rng.random(len(pdn.sm_sources)))
        trace[k] = solver.step()
    return trace


def _steps_per_second(vectorized: bool, steps: int) -> float:
    """Best of TIMING_ROUNDS rounds (robust on a noisy shared core)."""
    pdn, solver = _make(vectorized)
    _drive(pdn, solver, 50)  # warm caches / allocator
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        _drive(pdn, solver, steps)
        best = min(best, time.perf_counter() - start)
    return steps / best


def test_bit_compatibility():
    pdn_a, fast = _make(vectorized=True)
    pdn_b, slow = _make(vectorized=False)
    diff = np.abs(
        _drive(pdn_a, fast, COMPARE_STEPS) - _drive(pdn_b, slow, COMPARE_STEPS)
    )
    assert diff.max() <= 1e-12


def test_solver_steps_per_second(benchmark):
    naive = benchmark.pedantic(
        _steps_per_second, args=(False, 2000), rounds=1, iterations=1
    )
    fast = _steps_per_second(True, 4000)
    speedup = fast / naive
    emit(
        "Transient solver hot path (4x4 stacked PDN)",
        format_table(
            ["path", "steps/s"],
            [
                ["naive loop", f"{naive:,.0f}"],
                ["vectorized", f"{fast:,.0f}"],
                ["speedup", f"{speedup:.1f}x"],
            ],
            title=f"Solver stepping throughput (dt={DT:g} s)",
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_solver.json", "w") as handle:
        json.dump(
            {
                "netlist": "stacked_4x4",
                "unknowns": _make(True)[1].structure.size,
                "naive_steps_per_s": naive,
                "vectorized_steps_per_s": fast,
                "speedup": speedup,
                "floor": SPEEDUP_FLOOR,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    assert speedup >= SPEEDUP_FLOOR
