"""GPU-model hot-path performance: vectorized engine vs reference SMs.

Times the struct-of-arrays engine (``repro.gpu.engine``) against the
retained per-object reference on a paper benchmark, asserting both the
speedup floor and exact bit-identity of the per-cycle power traces (the
engine's equivalence contract — see ``docs/performance.md``).

The engine has two step backends (a compiled C kernel and a pure-NumPy
fallback); the floor applies to whatever backend resolves on this
machine, and the active backend is recorded in the results JSON.

Writes ``benchmarks/results/perf_gpu.json`` so CI can upload the
cycles/s numbers as an artifact.
"""

import json
import time

import numpy as np

from conftest import RESULTS_DIR, SEED, emit
from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.gpu.gpu import GPU
from repro.workloads.benchmarks import get_benchmark

BENCHMARK = "hotspot"
COMPARE_CYCLES = 1500
TIMING_ROUNDS = 3
SPEEDUP_FLOOR = 5.0


def _make(vectorized: bool) -> GPU:
    spec = get_benchmark(BENCHMARK)
    return GPU(
        spec.kernel,
        config=SystemConfig(),
        seed=SEED,
        miss_ratio=spec.miss_ratio,
        jitter=spec.jitter,
        vectorized=vectorized,
    )


def _cycles_per_second(vectorized: bool, cycles: int) -> float:
    """Best of TIMING_ROUNDS rounds (robust on a noisy shared core)."""
    gpu = _make(vectorized)
    gpu.run(50)  # warm caches / stream tables / allocator
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        gpu.run(cycles)
        best = min(best, time.perf_counter() - start)
    return cycles / best


def test_bit_identity():
    ref = _make(vectorized=False)
    vec = _make(vectorized=True)
    assert np.array_equal(ref.run(COMPARE_CYCLES), vec.run(COMPARE_CYCLES))
    assert ref.total_instructions() == vec.total_instructions()
    assert ref.total_fake_instructions() == vec.total_fake_instructions()
    assert ref.kernels_launched == vec.kernels_launched


def test_gpu_cycles_per_second(benchmark):
    backend = _make(vectorized=True).engine.backend
    reference = benchmark.pedantic(
        _cycles_per_second, args=(False, 2000), rounds=1, iterations=1
    )
    fast_cycles = 50_000 if backend == "c" else 4000
    fast = _cycles_per_second(True, fast_cycles)
    speedup = fast / reference
    emit(
        "GPU model hot path (16 SMs, hotspot kernel)",
        format_table(
            ["path", "cycles/s"],
            [
                ["per-object reference", f"{reference:,.0f}"],
                [f"vectorized ({backend})", f"{fast:,.0f}"],
                ["speedup", f"{speedup:.1f}x"],
            ],
            title=f"GPU stepping throughput ({BENCHMARK})",
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_gpu.json", "w") as handle:
        json.dump(
            {
                "benchmark": BENCHMARK,
                "backend": backend,
                "reference_cycles_per_s": reference,
                "vectorized_cycles_per_s": fast,
                "speedup": speedup,
                "floor": SPEEDUP_FLOOR,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    assert speedup >= SPEEDUP_FLOOR
