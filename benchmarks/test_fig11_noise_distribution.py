"""Figure 11 — supply-noise distribution across benchmarks.

For every benchmark, runs the voltage-stacked GPU with a 0.2x-die
CR-IVR twice — circuit-only and cross-layer — and prints the box-plot
statistics of all 16 SMs' supply voltages, plus the synthetic
worst-imbalance column on the right of the paper's figure.
"""

import numpy as np

from conftest import COSIM_CYCLES, cosim_run, emit
from repro.analysis.metrics import noise_box_stats
from repro.analysis.report import format_table
from repro.sim.cosim import CosimConfig, LayerShutoffEvent, run_cosim
from repro.workloads.benchmarks import BENCHMARK_NAMES


def _distributions():
    rows = []
    stats = {}
    for name in BENCHMARK_NAMES:
        for label, use_controller in (("circuit", False), ("cross", True)):
            result = cosim_run(name, use_controller=use_controller)
            box = noise_box_stats(result.sm_voltages)
            stats[(name, label)] = box
            rows.append(
                [
                    name,
                    label,
                    f"{box.minimum:.3f}",
                    f"{box.q1:.3f}",
                    f"{box.median:.3f}",
                    f"{box.q3:.3f}",
                    f"{box.maximum:.3f}",
                ]
            )
    # The worst-case imbalance column (rightmost box of Fig. 11).
    worst = run_cosim(
        "heartwall",
        CosimConfig(
            cycles=COSIM_CYCLES,
            warmup_cycles=100,
            shutoff=LayerShutoffEvent(layer=3, start_cycle=800),
            seed=17,
        ),
    )
    box = noise_box_stats(worst.sm_voltages)
    stats[("worst case", "cross")] = box
    rows.append(
        [
            "worst case",
            "cross",
            f"{box.minimum:.3f}",
            f"{box.q1:.3f}",
            f"{box.median:.3f}",
            f"{box.q3:.3f}",
            f"{box.maximum:.3f}",
        ]
    )
    return rows, stats


def test_fig11_noise_distribution(benchmark):
    rows, stats = benchmark.pedantic(_distributions, rounds=1, iterations=1)
    emit(
        "Fig 11 noise distribution",
        format_table(
            ["benchmark", "solution", "min", "q1", "median", "q3", "max"],
            rows,
            title="Fig 11: SM supply-voltage distribution (volts)",
        ),
    )

    improved = 0
    for name in BENCHMARK_NAMES:
        circuit = stats[(name, "circuit")]
        cross = stats[(name, "cross")]
        # Medians stay near nominal for both solutions.
        assert 0.9 < cross.median < 1.1
        if cross.minimum >= circuit.minimum - 1e-3:
            improved += 1
    # Paper: 9 of 12 benchmarks see reduced noise from the controller
    # (3 outliers from boundary transitions).  Require a clear majority.
    assert improved >= 8

    # The worst-case column stays bounded with the cross-layer system.
    assert stats[("worst case", "cross")].q1 > 0.7
