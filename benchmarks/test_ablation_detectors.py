"""Ablation — front-end voltage detector choice (Table II).

The detector's latency feeds the total control-loop budget, and the
loop latency sets both the worst-case droop (Fig. 10) and the CR-IVR
area required to hold the guardband.  This ablation prices the three
Table II options end to end:

* ODDD (the default): fastest, coarse — keeps the loop at 60 cycles;
* ADC: nearly as fast, finest resolution, more power;
* CPM: the slow option — pushes the loop toward the Fig. 10 knee.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.core.detectors import DETECTOR_OPTIONS
from repro.core.overheads import control_latency_cycles
from repro.pdn.area import AreaModel

GPU_DIE_MM2 = 529.0


def _experiment():
    model = AreaModel()
    rows = []
    results = {}
    for key, spec in DETECTOR_OPTIONS.items():
        latency = control_latency_cycles(spec)
        area = model.required_area_mm2(latency)
        droop_at_02x = model.worst_droop_v(0.2 * GPU_DIE_MM2, latency)
        results[key] = (latency, area, droop_at_02x)
        rows.append(
            [
                spec.name,
                spec.latency_cycles,
                latency,
                f"{area:.1f} mm2 ({area / GPU_DIE_MM2:.2f}x)",
                f"{droop_at_02x:.3f} V",
                f"{spec.power_mw:.0f} mW",
                f"{spec.resolution_v * 1e3:.0f} mV",
            ]
        )
    return rows, results


def test_ablation_detector_choice(benchmark):
    rows, results = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit(
        "Ablation: detector choice",
        format_table(
            ["detector", "sense cycles", "loop cycles", "required CR-IVR",
             "droop @0.2x", "power", "resolution"],
            rows,
            title="Table II detectors priced through the loop-latency budget",
        ),
    )
    oddd_latency, oddd_area, oddd_droop = results["oddd"]
    cpm_latency, cpm_area, cpm_droop = results["cpm"]
    adc_latency, adc_area, _ = results["adc"]
    # The default ODDD keeps the paper's 60-cycle loop and the 0.2x
    # design point inside the guardband.
    assert oddd_latency == 60
    assert oddd_droop <= 0.2 + 1e-9
    # The slow CPM pushes the loop toward the Fig. 10 knee: more CR-IVR
    # area is needed and the 0.2x design point degrades.
    assert cpm_latency > 80
    assert cpm_area > oddd_area
    assert cpm_droop > oddd_droop
    # ADC is a viable alternative: close to ODDD's loop budget.
    assert adc_latency - oddd_latency <= 10
    assert adc_area <= 1.2 * oddd_area
