"""Figure 15 — DFS on the conventional vs the voltage-stacked GPU.

Runs GRAPE-style DFS at the paper's performance goals on both systems
and reports board-input energy per instruction, normalized to the
conventional GPU at peak performance.

Paper shape: the hypervisor's frequency clamping costs the stacked GPU
a slight computational-energy increase (~1-2 %), but its superior PDE
more than compensates, netting 7-13 % lower total energy than DFS on
the conventional PDS.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.sim.power_experiments import run_baseline, run_dfs_experiment

TARGETS = [0.7, 0.5, 0.2]
BENCH = "hotspot"
CYCLES = 5 * 4096


def _experiment():
    reference = run_baseline(BENCH, stacked=False, cycles=CYCLES)
    ref_energy = reference.energy_per_instruction_j()
    rows = [["no PM", "conventional", 1.0, f"{reference.pde():.1%}", 0]]
    points = {}
    vs_ref = run_baseline(BENCH, stacked=True, cycles=CYCLES)
    rows.append(
        ["no PM", "VS cross-layer",
         round(vs_ref.energy_per_instruction_j() / ref_energy, 4),
         f"{vs_ref.pde():.1%}", 0]
    )
    points[("none", True)] = vs_ref.energy_per_instruction_j() / ref_energy
    points[("none", False)] = 1.0
    for target in TARGETS:
        for stacked in (False, True):
            run = run_dfs_experiment(
                BENCH, performance_target=target, stacked=stacked,
                cycles=CYCLES,
            )
            normalized = run.energy_per_instruction_j() / ref_energy
            points[(target, stacked)] = normalized
            rows.append(
                [
                    f"DFS {target:.0%}",
                    "VS cross-layer" if stacked else "conventional",
                    round(normalized, 4),
                    f"{run.pde():.1%}",
                    run.frequency_overrides,
                ]
            )
    return rows, points


def test_fig15_dfs_energy(benchmark):
    rows, points = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit(
        "Fig 15 DFS energy",
        format_table(
            ["power mgmt", "PDS", "normalized energy/instr", "PDE",
             "hypervisor overrides"],
            rows,
            title=f"Fig 15: DFS energy on conventional vs VS GPU ({BENCH})",
        ),
    )
    # At every performance goal, the voltage-stacked GPU ends up with
    # lower board-input energy than the conventional GPU under the same
    # DFS policy — the collaborative-operation headline.
    for target in TARGETS:
        conventional = points[(target, False)]
        stacked = points[(target, True)]
        saving = 1 - stacked / conventional
        assert saving > 0.04, f"target {target}: saving {saving:.1%}"
        assert saving < 0.20
