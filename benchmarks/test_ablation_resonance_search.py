"""Ablation — empirical resonance search vs the impedance analysis.

The effective-impedance methodology (Section III-B) predicts the
frequencies at which load-current energy hurts most.  This ablation
validates the prediction *in the time domain*: a square-wave "power
virus" sweeps its fundamental frequency through the PDN, and the
frequency producing the worst droop must land on the AC analysis's
global resonance peak (+/- a sweep bin).

It also validates the residual story: a low-frequency residual pattern
(intra-column imbalance) produces more droop per ampere than the same
current applied globally — Fig. 3's Z_R >> Z_G finding, measured
transiently.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_series, format_table
from repro.circuits.ac import log_frequency_grid
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.impedance import ImpedanceAnalyzer, StimulusKind
from repro.sim.trace_cosim import run_current_pattern
from repro.workloads.synthetic import (
    resonance_currents,
    worst_case_residual_currents,
)

SWEEP_MHZ = [20, 35, 50, 63, 80, 110, 150, 220]


def _sweep():
    droops = []
    for f_mhz in SWEEP_MHZ:
        pattern = resonance_currents(
            f_mhz * 1e6, low_activity=0.4, high_activity=0.9
        )
        result = run_current_pattern(
            pattern, duration_s=0.8e-6, cr_ivr_area_mm2=0.0
        )
        nominal = float(np.median(result.sm_voltages))
        droops.append(nominal - result.min_voltage)
    # AC-analysis prediction of the worst global frequency.
    analyzer = ImpedanceAnalyzer(build_stacked_pdn())
    freqs = log_frequency_grid(10e6, 300e6, points_per_decade=30)
    z_global = analyzer.sweep(freqs, StimulusKind.GLOBAL)
    predicted_mhz = float(freqs[int(np.argmax(z_global))] / 1e6)
    return droops, predicted_mhz


def test_resonance_search_matches_impedance_peak(benchmark):
    droops, predicted_mhz = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: resonance search",
        format_series(
            {"freq_mhz": SWEEP_MHZ, "worst_droop_v": [round(d, 4) for d in droops]},
            x_label="freq_mhz",
            title=(
                "Empirical worst droop vs virus frequency "
                f"(AC analysis predicts {predicted_mhz:.0f} MHz)"
            ),
        ),
    )
    empirical_mhz = SWEEP_MHZ[int(np.argmax(droops))]
    # The empirical worst frequency lands on the predicted resonance
    # within one sweep bin.
    neighbours = {
        SWEEP_MHZ[max(0, int(np.argmax(droops)) - 1)],
        empirical_mhz,
        SWEEP_MHZ[min(len(SWEEP_MHZ) - 1, int(np.argmax(droops)) + 1)],
    }
    assert any(abs(m - predicted_mhz) < 25 for m in neighbours)


def test_residual_hurts_more_than_global(benchmark):
    def _compare():
        # Same 2 A of stimulus: once concentrated as an intra-column
        # residual at 2 MHz, once as part of the global square wave.
        residual = worst_case_residual_currents(
            2e6, sm=0, amplitude_a=2.0, activity=0.6
        )
        global_wave = resonance_currents(
            2e6, low_activity=0.56, high_activity=0.64
        )  # ~2 A total swing across 16 SMs
        r_res = run_current_pattern(residual, 2.0e-6, cr_ivr_area_mm2=0.0)
        r_glob = run_current_pattern(global_wave, 2.0e-6, cr_ivr_area_mm2=0.0)
        droop_res = float(np.median(r_res.sm_voltages) - r_res.min_voltage)
        droop_glob = float(np.median(r_glob.sm_voltages) - r_glob.min_voltage)
        return droop_res, droop_glob

    droop_res, droop_glob = benchmark.pedantic(_compare, rounds=1, iterations=1)
    emit(
        "Ablation: residual vs global stimulus",
        format_table(
            ["stimulus", "worst droop (V)"],
            [["residual 2 A @ 2 MHz", round(droop_res, 4)],
             ["global 2 A @ 2 MHz", round(droop_glob, 4)]],
            title="Per-ampere noise: residual imbalance vs global load",
        ),
    )
    assert droop_res > 2 * droop_glob