"""Figure 16 — power gating on the conventional vs voltage-stacked GPU.

Applies Warped-Gates PG (GATES scheduling + Blackout) to both systems
and reports energy per instruction normalized to the ungated
conventional GPU.  The hypervisor occasionally wakes gated units to
bound column leakage imbalance — a small energy give-back that the
stacked PDE gain more than recovers.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.sim.power_experiments import run_baseline, run_pg_experiment

BENCHES = ["blackscholes", "heartwall", "srad"]
CYCLES = 6000


def _experiment():
    rows = []
    savings = {}
    for bench in BENCHES:
        reference = run_baseline(bench, stacked=False, cycles=CYCLES)
        ref_energy = reference.energy_per_instruction_j()
        conventional = run_pg_experiment(bench, stacked=False, cycles=CYCLES)
        stacked = run_pg_experiment(bench, stacked=True, cycles=CYCLES)
        for label, run in (
            ("conventional", conventional),
            ("VS cross-layer", stacked),
        ):
            rows.append(
                [
                    bench,
                    label,
                    round(run.energy_per_instruction_j() / ref_energy, 4),
                    f"{run.pde():.1%}",
                    run.gating_vetoes,
                ]
            )
        savings[bench] = 1 - (
            stacked.energy_per_instruction_j()
            / conventional.energy_per_instruction_j()
        )
    return rows, savings


def test_fig16_power_gating_energy(benchmark):
    rows, savings = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit(
        "Fig 16 PG energy",
        format_table(
            ["benchmark", "PDS", "normalized energy/instr", "PDE",
             "hypervisor vetoes"],
            rows,
            title="Fig 16: power gating on conventional vs VS GPU",
        ),
    )
    # The stacked GPU under PG beats the conventional GPU under PG for
    # every benchmark: PDE dominates the hypervisor's veto give-back.
    for bench, saving in savings.items():
        assert saving > 0.04, f"{bench}: saving {saving:.1%}"
        assert saving < 0.20
