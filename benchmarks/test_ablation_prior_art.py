"""Ablation — prior-art mitigation schemes vs the cross-layer controller.

Section II-C argues conventional single-layer noise mitigation does not
transfer to voltage stacking.  This ablation quantifies that on the
worst-imbalance scenario (layer shutoff at 0.2x CR-IVR area):

* **checkpoint-recovery** — emergencies are so frequent that rollback
  inflates execution time massively;
* **global detection-throttle** — throttling all SMs equally barely
  moves the settled layer voltages (it scales the imbalance *and* the
  balance together);
* **cross-layer (Algorithm 1)** — restores the rail.
"""

import numpy as np

from conftest import emit
from repro.analysis.report import format_table
from repro.core.prior_art import (
    CheckpointRecoveryModel,
    GlobalThrottleController,
)
from repro.gpu.isa import InstructionClass
from repro.gpu.kernels import KernelSpec
from repro.sim.cosim import CosimConfig, LayerShutoffEvent, run_cosim

EVENT_CYCLE = 700
CYCLES = 2200
AREA = 105.8

STEADY_KERNEL = KernelSpec(
    "steady_compute_ablation",
    mix={InstructionClass.FALU: 0.7, InstructionClass.FMA: 0.3},
    dependence=0.1,
    warps_per_sm=16,
    body_length=3000,
)


def _run(controller_object=None, use_controller=True):
    return run_cosim(
        kernel=STEADY_KERNEL,
        config=CosimConfig(
            cycles=CYCLES,
            warmup_cycles=800,
            cr_ivr_area_mm2=AREA,
            use_controller=use_controller,
            controller_object=controller_object,
            shutoff=LayerShutoffEvent(layer=3, start_cycle=EVENT_CYCLE),
            seed=17,
        ),
    )


def _experiment():
    none = _run(use_controller=False)
    global_throttle = _run(
        controller_object=GlobalThrottleController(throttle_width=1.0)
    )
    cross_layer = _run()

    checkpoint = CheckpointRecoveryModel()
    rows = []
    settled = {}
    for label, result in (
        ("no mitigation", none),
        ("global detect-throttle", global_throttle),
        ("cross-layer (Algorithm 1)", cross_layer),
    ):
        tail = result.worst_sm_voltage_trace()[-800:]
        settled[label] = float(np.median(tail))
        rows.append(
            [
                label,
                f"{settled[label]:.3f}",
                f"{float(np.percentile(tail, 5)):.3f}",
                checkpoint.count_emergencies(result.sm_voltages),
                f"{checkpoint.effective_slowdown(result.sm_voltages):.2f}x",
            ]
        )
    return rows, settled


def test_ablation_prior_art(benchmark):
    rows, settled = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit(
        "Ablation: prior-art mitigation",
        format_table(
            ["mitigation", "settled V (median)", "settled V (p5)",
             "emergencies", "checkpoint slowdown"],
            rows,
            title=(
                "Prior-art schemes vs Algorithm 1 under the worst "
                "imbalance (0.2x CR-IVR)"
            ),
        ),
    )
    # Global throttling scales balance and imbalance together, so it
    # can only shrink the droop proportionally to the throttle depth —
    # never close it: the rail stays far below the 0.8 V guardband.
    assert settled["global detect-throttle"] < 0.7
    # The cross-layer controller restores the rail, clearly separated
    # from the conventional scheme.
    assert settled["cross-layer (Algorithm 1)"] > 0.8
    assert (
        settled["cross-layer (Algorithm 1)"]
        > settled["global detect-throttle"] + 0.15
    )
    # Checkpoint-recovery cost is untenable without smoothing: the
    # unmitigated run suffers emergencies and a heavy rollback tax.
    none_row = rows[0]
    assert int(none_row[3]) >= 1
    assert float(none_row[4].rstrip("x")) > 1.2
