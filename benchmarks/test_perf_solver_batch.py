"""Batched transient-solver throughput: fused C kernel vs NumPy path.

``BatchTransientSolver.step_n`` ships two backends: the fused substep
kernel (``_solverc.c``, one C call per co-sim cycle) and the pure-NumPy
per-step loop that serves as its bit-identity oracle.  This driver
gates both halves of that contract at the solver layer, below the
co-sim loop:

* the C backend must reproduce the NumPy backend byte for byte over a
  mixed random load schedule (including the LAPACK back-substitution,
  companion updates and reactive-state carry), and
* the C backend must run at least ``SPEEDUP_FLOOR`` times faster.

Timing is min-of-``TIMING_ROUNDS`` on a prebuilt batch (construction
and LU factorization excluded — they are once-per-scenario costs).
Writes ``benchmarks/results/perf_solver_batch.json`` so CI can upload
solver-steps/s as an artifact.
"""

import json
import os
import time
from contextlib import contextmanager

import numpy as np
import pytest

from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_table
from repro.circuits import BatchTransientSolver, _solverc
from repro.circuits.transient import TransientSolver
from repro.config import StackConfig
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.parameters import DEFAULT_PDN

BATCH = 8
CYCLES = 1500
SUBSTEPS = 2
WARMUP_CYCLES = 50
TIMING_ROUNDS = 3
SPEEDUP_FLOOR = 2.0

DT = 1.0 / 700e6
NUM_SMS = StackConfig().num_sms
NOMINAL_A = 40.0 / NUM_SMS


@contextmanager
def _backend(name):
    old = os.environ.get(_solverc.BACKEND_ENV)
    os.environ[_solverc.BACKEND_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(_solverc.BACKEND_ENV, None)
        else:
            os.environ[_solverc.BACKEND_ENV] = old


def _build_batch():
    currents_bt = np.zeros((BATCH, NUM_SMS))
    pdns = []
    solvers = []
    for i in range(BATCH):
        pdn = build_stacked_pdn(stack=StackConfig(), params=DEFAULT_PDN)
        pdn.bind_current_buffer(currents_bt[i])
        pdns.append(pdn)
        solvers.append(TransientSolver(pdn.circuit, dt=DT))
    batch = BatchTransientSolver(solvers, shared_current_base=currents_bt)
    return batch, pdns, currents_bt


def _schedule(cycles):
    rng = np.random.default_rng(31)
    base = np.full(NUM_SMS, NOMINAL_A)
    return base * (0.2 + rng.random((cycles, BATCH, NUM_SMS)) * 1.6)


def _c_missing() -> bool:
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return (
            _solverc.load_solver_lib() is None
            or _solverc.dgetrs_pointer() is None
        )


def _run(backend, cycles, record=False):
    schedule = _schedule(cycles)
    batch, pdns, currents_bt = _build_batch()
    volts = np.empty((cycles, BATCH, batch.num_nodes)) if record else None
    with _backend(backend):
        for k in range(cycles):
            currents_bt[:] = schedule[k]
            node_v = batch.step_n(SUBSTEPS)
            if record:
                volts[k] = node_v
        assert batch.active_backend == backend
    return volts, batch


def test_solver_batch_bit_identity():
    if _c_missing():
        pytest.skip("compiled solver kernel unavailable")
    v_c, batch_c = _run("c", 400, record=True)
    v_np, batch_np = _run("numpy", 400, record=True)
    assert v_c.tobytes() == v_np.tobytes(), "C backend diverged from NumPy"
    for s_c, s_np in zip(batch_c.solvers, batch_np.solvers):
        assert s_c.stats.steps == s_np.stats.steps


def test_solver_batch_speedup_floor(benchmark):
    if _c_missing():
        pytest.skip("compiled solver kernel unavailable")
    schedule = _schedule(CYCLES)

    def timed(backend):
        batch, pdns, currents_bt = _build_batch()
        with _backend(backend):
            for k in range(WARMUP_CYCLES):
                currents_bt[:] = schedule[k]
                batch.step_n(SUBSTEPS)
            best = float("inf")
            for _ in range(TIMING_ROUNDS):
                start = time.perf_counter()
                for k in range(CYCLES):
                    currents_bt[:] = schedule[k]
                    batch.step_n(SUBSTEPS)
                best = min(best, time.perf_counter() - start)
        return best

    c_s = benchmark.pedantic(lambda: timed("c"), rounds=1, iterations=1)
    numpy_s = timed("numpy")
    speedup = numpy_s / c_s
    solver_steps = BATCH * CYCLES * SUBSTEPS
    emit(
        f"Batched solver substep throughput (B={BATCH})",
        format_table(
            ["backend", "wall s", "lane-steps/s"],
            [
                ["numpy", f"{numpy_s:.3f}", f"{solver_steps / numpy_s:,.0f}"],
                ["c", f"{c_s:.3f}", f"{solver_steps / c_s:,.0f}"],
                ["speedup", f"{speedup:.2f}x", ""],
            ],
            title="BatchTransientSolver.step_n: C kernel vs NumPy",
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_solver_batch.json", "w") as handle:
        json.dump(
            {
                "batch_size": BATCH,
                "cycles": CYCLES,
                "substeps": SUBSTEPS,
                "numpy_s": numpy_s,
                "c_s": c_s,
                "speedup": speedup,
                "lane_steps_per_s_c": solver_steps / c_s,
                "speedup_floor": SPEEDUP_FLOOR,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    assert speedup >= SPEEDUP_FLOOR, (
        f"C solver backend is only {speedup:.2f}x faster than NumPy "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
