"""Figure 8 — PDE and power breakdown across benchmarks and PDS configs.

For every benchmark, prints the normalized power breakdown (useful /
conversion / PDN / regulator / other) under each of the four PDS
configurations, with the per-benchmark PDE — the stacked-bar data of
Fig. 8.
"""

import numpy as np

from conftest import benchmark_trace, emit
from repro.analysis.report import format_table
from repro.config import StackConfig
from repro.pdn.efficiency import (
    layer_shuffle_power,
    pde_conventional,
    pde_single_ivr,
    pde_voltage_stacked,
)
from repro.workloads.benchmarks import BENCHMARK_NAMES


def _breakdowns():
    rows = []
    per_config_pde = {"vrm": [], "ivr": [], "vs_circ": [], "vs_cross": []}
    for name in BENCHMARK_NAMES:
        trace = benchmark_trace(name)
        load = trace.mean_power_w
        shuffle = layer_shuffle_power(trace.data, StackConfig())
        configs = {
            "vrm": pde_conventional(load),
            "ivr": pde_single_ivr(load),
            "vs_circ": pde_voltage_stacked(load, shuffle),
            "vs_cross": pde_voltage_stacked(
                load, shuffle, controller_power_w=1.634e-3
            ),
        }
        for key, b in configs.items():
            f = b.fractions()
            rows.append(
                [
                    name,
                    key,
                    f"{b.pde:.1%}",
                    f"{f['useful']:.3f}",
                    f"{f['conversion']:.3f}",
                    f"{f['pdn']:.3f}",
                    f"{f['regulator']:.3f}",
                    f"{f['other']:.3f}",
                ]
            )
            per_config_pde[key].append(b.pde)
    return rows, per_config_pde


def test_fig8_pde_and_breakdown(benchmark):
    rows, per_config = benchmark.pedantic(_breakdowns, rounds=1, iterations=1)
    emit(
        "Fig 8 PDE breakdown",
        format_table(
            ["benchmark", "pds", "PDE", "useful", "conversion", "pdn",
             "regulator", "other"],
            rows,
            title="Fig 8: power breakdown across benchmarks and PDS configs",
        ),
    )
    means = {k: float(np.mean(v)) for k, v in per_config.items()}
    emit(
        "Fig 8 per-config mean PDE",
        "\n".join(f"{k}: {v:.1%}" for k, v in means.items())
        + "\n(paper: VRM 80%, IVR 85%, VS ~92.3-93%)",
    )
    # Fig 8's qualitative content: every benchmark keeps the ordering,
    # and VS PDE sits in the 90+% band.
    for k in range(len(BENCHMARK_NAMES)):
        vrm = per_config["vrm"][k]
        ivr = per_config["ivr"][k]
        cross = per_config["vs_cross"][k]
        assert vrm < ivr < cross
    assert 0.90 < means["vs_cross"] < 0.97
    assert abs(means["vrm"] - 0.80) < 0.03

    # Benchmark-to-benchmark variation exists (the bars differ) because
    # imbalance differs across workloads.
    assert np.std(per_config["vs_cross"]) > 1e-4
