"""Batched co-sim throughput: B=8 lock-stepped lanes vs 8 serial runs.

The batched struct-of-scenarios engine (``repro.sim.cosim.run_cosim_batch``)
exists for exactly one reason — amortizing the per-cycle Python/NumPy
dispatch across B scenarios while staying bit-identical to the serial
oracle.  This driver gates both halves of that contract:

* a B=8 mixed-benchmark batch must run at least ``SPEEDUP_FLOOR`` times
  faster than the same 8 scenarios run serially in-process, and
* the batch results must be byte-equal to the serial results.

Timing is min-of-``TIMING_ROUNDS`` (robust on a noisy shared CI core).
Writes ``benchmarks/results/perf_cosim_batch.json`` so CI can upload
lane-cycles/s as an artifact.
"""

import json
import time

import numpy as np

from conftest import RESULTS_DIR, emit
from repro.analysis.report import format_table
from repro.sim.cosim import CosimConfig, CosimLane, run_cosim, run_cosim_batch

BATCH = 8
CYCLES = 2000
WARMUP = 200
TIMING_ROUNDS = 3
SPEEDUP_FLOOR = 6.0
LANE_BENCHMARKS = (
    "hotspot", "backprop", "bfs", "srad",
    "pathfinder", "heartwall", "hotspot", "bfs",
)


def _lanes():
    return [
        CosimLane(
            benchmark=name,
            config=CosimConfig(cycles=CYCLES, warmup_cycles=WARMUP, seed=i),
        )
        for i, name in enumerate(LANE_BENCHMARKS)
    ]


def _time_best(fn) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_bit_identity():
    batch = run_cosim_batch(_lanes())
    for lane, result in zip(_lanes(), batch):
        serial = run_cosim(lane.benchmark, config=lane.config)
        assert np.array_equal(result.power_trace.data, serial.power_trace.data)
        assert np.array_equal(result.sm_voltages, serial.sm_voltages)
        assert np.array_equal(result.supply_current, serial.supply_current)
        assert result.instructions == serial.instructions
        assert result.throttled_cycles == serial.throttled_cycles
        assert result.mean_dcc_power_w == serial.mean_dcc_power_w
        assert np.array_equal(result.kernel_durations, serial.kernel_durations)


def test_batch_speedup_floor(benchmark):
    # Warm caches (C engine build, benchmark stream tables, BLAS init)
    # outside the timed region for both paths.
    run_cosim_batch(_lanes()[:1])
    run_cosim(LANE_BENCHMARKS[0], config=_lanes()[0].config)

    batch_s = benchmark.pedantic(
        lambda: _time_best(lambda: run_cosim_batch(_lanes())),
        rounds=1, iterations=1,
    )
    serial_s = _time_best(
        lambda: [run_cosim(l.benchmark, config=l.config) for l in _lanes()]
    )
    speedup = serial_s / batch_s
    lane_cycles = BATCH * (CYCLES + WARMUP)
    emit(
        f"Batched co-sim throughput (B={BATCH} mixed lanes)",
        format_table(
            ["path", "wall s", "lane-cycles/s"],
            [
                ["serial x8", f"{serial_s:.2f}", f"{lane_cycles / serial_s:,.0f}"],
                [f"batched B={BATCH}", f"{batch_s:.2f}",
                 f"{lane_cycles / batch_s:,.0f}"],
                ["speedup", f"{speedup:.2f}x", ""],
            ],
            title="run_cosim_batch vs serial run_cosim",
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "perf_cosim_batch.json", "w") as handle:
        json.dump(
            {
                "batch_size": BATCH,
                "lane_benchmarks": list(LANE_BENCHMARKS),
                "cycles": CYCLES,
                "warmup_cycles": WARMUP,
                "serial_s": serial_s,
                "batch_s": batch_s,
                "speedup": speedup,
                "lane_cycles_per_s_batched": lane_cycles / batch_s,
                "speedup_floor": SPEEDUP_FLOOR,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    assert speedup >= SPEEDUP_FLOOR, (
        f"B={BATCH} batch is only {speedup:.2f}x faster than serial "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
