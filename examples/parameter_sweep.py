#!/usr/bin/env python
"""Parallel design-space sweep: CR-IVR area x benchmark.

Fans a 12-point grid (4 benchmarks x 3 CR-IVR sizings, plus one
deliberately bogus benchmark to show failure capture) across worker
processes with `repro.sim.sweep`, then prints the minimum-voltage /
efficiency landscape and writes the structured results to JSON.

Every point gets a deterministic seed derived from its grid index, so
the sweep is reproducible regardless of how the scheduler interleaves
workers.  A failing point is reported in the results — it never kills
the sweep.

Run:  python examples/parameter_sweep.py
The same sweep is available from the command line:
      python -m repro sweep --benchmarks hotspot,heartwall,fastwalsh,bfs
"""

from repro.pdn.parameters import GPU_DIE_AREA_MM2
from repro.sim.cosim import CosimConfig
from repro.sim.sweep import run_sweep

BENCHMARKS = ["hotspot", "heartwall", "fastwalsh", "bfs", "__injected_failure__"]
AREAS = [0.1 * GPU_DIE_AREA_MM2, 0.2 * GPU_DIE_AREA_MM2, 0.4 * GPU_DIE_AREA_MM2]


def main() -> None:
    print(f"Sweeping {len(BENCHMARKS)} benchmarks x {len(AREAS)} CR-IVR areas")
    sweep = run_sweep(
        BENCHMARKS,
        axes={"cr_ivr_area_mm2": AREAS},
        base_config=CosimConfig(cycles=1000, warmup_cycles=200),
        max_workers=None,  # one worker per CPU
        progress=lambda r: print(
            f"  {r.point.describe():<52s} "
            f"{'ok' if r.ok else 'FAILED'} ({r.elapsed_s:.1f}s)"
        ),
    )
    print()
    print(f"{'benchmark':<12s} {'area/die':>8s} {'V(min)':>7s} "
          f"{'PDE':>6s} {'IPC':>6s}")
    for r in sweep.successes():
        area = dict(r.point.overrides)["cr_ivr_area_mm2"]
        m = r.metrics
        print(f"{r.point.benchmark:<12s} {area / GPU_DIE_AREA_MM2:>7.1f}x "
              f"{m['min_voltage_v']:>7.3f} {m['pde']:>6.1%} "
              f"{m['throughput_ipc']:>6.1f}")
    for r in sweep.failures():
        first_line = (r.error or "").splitlines()[0]
        print(f"{r.point.describe()}: FAILED — {first_line}")
    path = sweep.write_json("sweep_results.json")
    print()
    print(f"{len(sweep.points)} points ({sweep.num_failed} failed) in "
          f"{sweep.elapsed_s:.1f}s; results written to {path}")


if __name__ == "__main__":
    main()
