#!/usr/bin/env python
"""Worst-case supply reliability (the paper's Fig. 9 experiment).

Runs a steady compute-saturated kernel on the voltage-stacked GPU and
then abruptly halts every SM in the top layer — the extreme current
imbalance that makes naive voltage stacking impractical.  Compares how
four systems ride the event:

* circuit-only voltage stacking with CR-IVRs of 2x, 1x and 0.2x the GPU
  die area, and
* the cross-layer solution (0.2x area + the Algorithm 1 controller).

The expected outcome (the core result of the paper): circuit-only needs
about 2x the GPU's own area to hold the rail above the 0.8 V guardband,
while the cross-layer controller achieves a stable rail with an 0.2x
CR-IVR — a ~90 % area reduction.

Run:  python examples/worst_case_reliability.py
"""

import numpy as np

from repro.gpu.isa import InstructionClass
from repro.gpu.kernels import KernelSpec
from repro.pdn.parameters import GPU_DIE_AREA_MM2 as GPU_DIE_MM2
from repro.sim.cosim import CosimConfig, LayerShutoffEvent, run_cosim
EVENT_CYCLE = 700

STEADY_KERNEL = KernelSpec(
    "steady_compute",
    mix={InstructionClass.FALU: 0.7, InstructionClass.FMA: 0.3},
    dependence=0.1,
    warps_per_sm=16,
    body_length=3000,
)


def run_scenario(label: str, area_mm2: float, use_controller: bool) -> None:
    result = run_cosim(
        kernel=STEADY_KERNEL,
        config=CosimConfig(
            cycles=2600,
            warmup_cycles=800,
            cr_ivr_area_mm2=area_mm2,
            use_controller=use_controller,
            shutoff=LayerShutoffEvent(layer=3, start_cycle=EVENT_CYCLE),
            seed=17,
        ),
    )
    worst = result.worst_sm_voltage_trace()
    before = float(np.percentile(worst[:EVENT_CYCLE], 5))
    transient = float(worst[EVENT_CYCLE : EVENT_CYCLE + 400].min())
    settled = float(np.median(worst[-800:]))
    verdict = "OK (>0.8 V)" if settled > 0.8 else "UNSAFE"
    print(
        f"  {label:<32s} before {before:5.3f} V | "
        f"transient dip {transient:5.3f} V | settled {settled:5.3f} V  {verdict}"
    )


def main() -> None:
    print("Worst-case imbalance: top layer halted at cycle "
          f"{EVENT_CYCLE} (minimum SM supply voltage)")
    print()
    run_scenario("circuit only, 2x GPU area", 2.0 * GPU_DIE_MM2, False)
    run_scenario("circuit only, 1x GPU area", 1.0 * GPU_DIE_MM2, False)
    run_scenario("circuit only, 0.2x GPU area", 0.2 * GPU_DIE_MM2, False)
    run_scenario("cross layer,  0.2x GPU area", 0.2 * GPU_DIE_MM2, True)
    print()
    print("Cross-layer voltage smoothing replaces ~90% of the CR-IVR "
          "silicon the circuit-only solution needs.")


if __name__ == "__main__":
    main()
