#!/usr/bin/env python
"""Design-space exploration of the voltage-stacked PDS.

Walks through the circuit-level design flow of Sections III and IV:

1. sweep the unregulated PDN's effective impedances (the Fig. 3
   signatures: global resonance + residual DC plateau);
2. size the CR-IVR for the circuit-only and cross-layer configurations
   against the 0.2 V guardband (the Table III area story);
3. verify the controller's formal stability and disturbance-rejection
   bound at the chosen loop latency (Section IV-B);
4. print the resulting design point.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.circuits.ac import log_frequency_grid
from repro.core.overheads import control_latency_cycles
from repro.core.stability import (
    disturbance_rejection_bound,
    sampled_closed_loop,
    select_feedback_gain,
    spectral_radius,
)
from repro.core.state_space import StackedGridModel
from repro.pdn.area import AreaModel
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.impedance import ImpedanceAnalyzer, StimulusKind
from repro.pdn.parameters import GPU_DIE_AREA_MM2 as GPU_DIE_MM2


def explore_impedance() -> None:
    print("1. Effective impedance of the unregulated 4x4 stack")
    analyzer = ImpedanceAnalyzer(build_stacked_pdn())
    freqs = log_frequency_grid(1e6, 5e8, points_per_decade=10)
    z_global = analyzer.sweep(freqs, StimulusKind.GLOBAL)
    z_residual = analyzer.sweep(freqs, StimulusKind.RESIDUAL, observe_sm=0, sm=0)
    peak_f = freqs[int(np.argmax(z_global))]
    print(f"   global resonance:  {z_global.max():.3f} ohm at "
          f"{peak_f / 1e6:.0f} MHz")
    print(f"   residual plateau:  {z_residual[0]:.3f} ohm at DC "
          f"({z_residual[0] / z_global.max():.1f}x the global peak)")
    print("   -> current imbalance dominates the worst case, and it is a")
    print("      *low-frequency* problem: an opening for the architecture.")
    print()


def explore_area() -> None:
    print("2. CR-IVR die-area sizing against the 0.2 V guardband")
    model = AreaModel()
    latency = control_latency_cycles()
    circuit_only = model.required_area_mm2(None)
    cross_layer = model.required_area_mm2(latency)
    print(f"   circuit-only: {circuit_only:6.0f} mm^2 "
          f"({circuit_only / GPU_DIE_MM2:.2f}x the GPU die)")
    print(f"   cross-layer:  {cross_layer:6.0f} mm^2 "
          f"({cross_layer / GPU_DIE_MM2:.2f}x) at {latency}-cycle latency")
    print(f"   area saved by the controller: "
          f"{1 - cross_layer / circuit_only:.0%} (paper: 88%)")
    print()
    print("   worst-case droop across the design space:")
    for area_x in (0.1, 0.2, 0.4, 0.8, 2.0):
        line = f"     {area_x:>4.1f}x die: "
        for lat in (40, 60, 100, 140):
            v = model.worst_voltage_v(area_x * GPU_DIE_MM2, lat)
            line += f"  lat{lat}={v:.2f}V"
        print(line)
    print()


def explore_control() -> None:
    print("3. Formal control analysis at the synthesized loop latency")
    latency = control_latency_cycles()
    period = latency / 700e6
    model = StackedGridModel.cross_layer_default()
    k, radius = select_feedback_gain(model, period)
    k_limit = 2 * model.layer_capacitance_f / period
    bound = disturbance_rejection_bound(model, k, period)
    print(f"   loop latency: {latency} cycles ({period * 1e9:.0f} ns)")
    print(f"   stable gain range: 0 < k < {k_limit:.1f} W/V "
          f"(sampling-limited)")
    print(f"   selected k = {k:.2f} W/V, closed-loop spectral radius "
          f"{radius:.3f}")
    print(f"   worst closed-loop impedance below Nyquist: {bound:.3f} ohm")
    bare = StackedGridModel()
    bare_limit = 2 * bare.layer_capacitance_f / period
    unstable = sampled_closed_loop(bare, 1.5 * bare_limit, period)
    print(f"   (sanity: on the bare integrator grid, 1.5x its gain limit "
          f"-> radius {spectral_radius(unstable[:3, :3]):.2f} > 1, unstable)")
    print()


def main() -> None:
    explore_impedance()
    explore_area()
    explore_control()
    print("Design point: 0.2x-die CR-IVR + 60-cycle smoothing loop —")
    print("the paper's practical voltage-stacked GPU.")


if __name__ == "__main__":
    main()
