#!/usr/bin/env python
"""Collaborative power management: DFS + power gating on a stacked GPU.

Demonstrates the Section VI-D experiments: GRAPE-style dynamic frequency
scaling and Warped-Gates power gating applied to both the conventional
GPU and the voltage-stacked GPU (through the Algorithm 2 VS-aware
hypervisor), comparing board-input energy per unit of work.

The headline: even though the hypervisor occasionally overrides
frequency requests and vetoes gating decisions to keep stack layers
balanced, the stacked GPU's superior power delivery efficiency nets
7-13 % lower total energy at every performance goal.

Run:  python examples/collaborative_power_management.py
"""

from repro.sim.power_experiments import (
    run_baseline,
    run_dfs_experiment,
    run_pg_experiment,
)

BENCH = "hotspot"
CYCLES = 4 * 4096


def main() -> None:
    print(f"Benchmark: {BENCH}")
    reference = run_baseline(BENCH, stacked=False, cycles=CYCLES)
    ref = reference.energy_per_instruction_j()
    print(f"Reference (conventional, no PM): "
          f"{ref * 1e9:.2f} nJ/instruction at PDE {reference.pde():.1%}")
    print()

    print("Dynamic frequency scaling (GRAPE), normalized energy per "
          "instruction:")
    for target in (0.7, 0.5, 0.2):
        conventional = run_dfs_experiment(
            BENCH, performance_target=target, stacked=False, cycles=CYCLES
        )
        stacked = run_dfs_experiment(
            BENCH, performance_target=target, stacked=True, cycles=CYCLES
        )
        conv_e = conventional.energy_per_instruction_j() / ref
        vs_e = stacked.energy_per_instruction_j() / ref
        print(
            f"  target {target:>4.0%}:  conventional {conv_e:6.3f} | "
            f"voltage-stacked {vs_e:6.3f} "
            f"(saving {1 - vs_e / conv_e:5.1%}, "
            f"{stacked.frequency_overrides} hypervisor overrides)"
        )
    print()

    print("Power gating (Warped Gates), normalized energy per instruction:")
    conventional = run_pg_experiment(BENCH, stacked=False, cycles=CYCLES)
    stacked = run_pg_experiment(BENCH, stacked=True, cycles=CYCLES)
    conv_e = conventional.energy_per_instruction_j() / ref
    vs_e = stacked.energy_per_instruction_j() / ref
    print(
        f"  PG:           conventional {conv_e:6.3f} | "
        f"voltage-stacked {vs_e:6.3f} "
        f"(saving {1 - vs_e / conv_e:5.1%}, "
        f"{stacked.gating_vetoes} hypervisor vetoes)"
    )


if __name__ == "__main__":
    main()
