#!/usr/bin/env python
"""Noise spectroscopy: where in frequency does a workload's danger live?

Reproduces the paper's Section III-B reasoning on a real workload trace:

1. run a benchmark on the GPU model and capture its per-SM power trace;
2. decompose the trace into the three orthogonal current components
   (global / stack / residual) and take each component's spectrum;
3. weight each spectral line by the PDN's effective impedance for that
   component at that frequency — the product is the supply-noise
   contribution;
4. report which component dominates and in which band, and therefore
   which layer of the cross-layer solution is responsible for it.

Run:  python examples/noise_spectroscopy.py [benchmark]
"""

import sys

import numpy as np

from repro.analysis.spectral import imbalance_spectrum
from repro.circuits.ac import log_frequency_grid
from repro.config import SystemConfig
from repro.gpu.gpu import GPU
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.impedance import ImpedanceAnalyzer, StimulusKind
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.traces import capture_trace

BANDS = [
    ("low    (<6 MHz: controller's band)", 3e5, 6e6),
    ("middle (6-30 MHz: shared)", 6e6, 30e6),
    ("high   (>30 MHz: CR-IVR/decap band)", 30e6, 350e6),
]


def band_noise(freqs, amps, z_of_f, lo, hi):
    """RMS noise contribution of a component within a band."""
    mask = (freqs >= lo) & (freqs < hi)
    if not np.any(mask):
        return 0.0
    contributions = amps[mask] * z_of_f(freqs[mask])
    return float(np.sqrt(0.5 * np.sum(contributions**2)))


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "backprop"
    spec = get_benchmark(name)
    print(f"Capturing {name!r} power trace...")
    gpu = GPU(
        spec.kernel, config=SystemConfig(), seed=11,
        miss_ratio=spec.miss_ratio, jitter=spec.jitter,
    )
    trace = capture_trace(gpu, 4096, warmup_cycles=300)
    spectra = imbalance_spectrum(trace.data, trace.frequency_hz)

    print("Building impedance profiles (unregulated PDN)...")
    analyzer = ImpedanceAnalyzer(build_stacked_pdn())
    grid = log_frequency_grid(3e5, 3.5e8, points_per_decade=8)
    z_tables = {
        "global": analyzer.sweep(grid, StimulusKind.GLOBAL),
        "stack": analyzer.sweep(grid, StimulusKind.STACK, column=0),
        "residual": analyzer.sweep(
            grid, StimulusKind.RESIDUAL, observe_sm=0, sm=0
        ),
    }

    def z_interp(component):
        table = z_tables[component]

        def z_of_f(f):
            return np.interp(np.log10(f), np.log10(grid), table)

        return z_of_f

    print()
    print(f"Supply-noise contribution by component and band ({name}):")
    header = f"  {'band':<38s}" + "".join(
        f"{c:>12s}" for c in ("global", "stack", "residual")
    )
    print(header)
    totals = {c: 0.0 for c in z_tables}
    for label, lo, hi in BANDS:
        row = f"  {label:<38s}"
        for component in ("global", "stack", "residual"):
            freqs, amps = spectra[component]
            noise = band_noise(freqs, amps, z_interp(component), lo, hi)
            totals[component] += noise**2
            row += f"{1e3 * noise:9.2f} mV"
        print(row)
    print()
    dominant = max(totals, key=totals.get)
    print(f"Dominant noise component: {dominant} "
          f"(total {1e3 * np.sqrt(totals[dominant]):.1f} mV RMS)")
    print("The residual (imbalance) component's low/middle-band share is")
    print("what the architectural controller exists to remove; the high")
    print("band belongs to the CR-IVRs and decap — the cross-layer split.")


if __name__ == "__main__":
    main()
