#!/usr/bin/env python
"""Instrument a co-simulation with the run-telemetry recorder.

Runs one cross-layer co-simulation with a `Telemetry` recorder
attached, prints where the wall-clock time went (GPU model vs
transient solve vs controller), the solver/controller work counters,
and the decimated minimum-SM-voltage channel, then persists the run as
a telemetry directory (`manifest.json` + `events.jsonl`) and renders
it back the way `repro trace` would.

Run:  python examples/telemetry_trace.py
The same instrumentation is available from the command line:
      python -m repro run hotspot --telemetry runs/hotspot
      python -m repro trace runs/hotspot
"""

import tempfile
from pathlib import Path

from repro.sim.cosim import CosimConfig, run_cosim
from repro.telemetry import Telemetry, load_manifest, render_manifest, write_run


def main() -> None:
    tele = Telemetry(run_id="example")
    config = CosimConfig(cycles=2000, warmup_cycles=200, seed=11)
    result = run_cosim("hotspot", config, telemetry=tele)
    print(result.summary())
    print()

    # The recorder is live immediately — no file round trip needed.
    wall = tele.elapsed_s
    print(f"stage split of {wall * 1e3:.0f} ms wall:")
    for stage, seconds in sorted(tele.timings.items(), key=lambda kv: -kv[1]):
        print(f"  {stage:<16s} {seconds * 1e3:8.1f} ms  {seconds / wall:6.1%}")
    print(
        f"solver: {tele.counters['solver_steps']} steps, "
        f"{tele.counters['solver_factorizations']} LU factorization(s); "
        f"controller: {tele.counters['controller_decisions_made']} decisions, "
        f"{tele.counters['controller_triggers']} triggers"
    )
    chan = tele.channels["min_sm_voltage_v"]
    print(
        f"min-voltage channel: {len(chan)} samples kept of "
        f"{chan.offered} offered (stride {chan.stride}), "
        f"worst {min(chan.values):.3f} V"
    )
    print()

    # Persist and render — exactly what `repro trace` does.
    with tempfile.TemporaryDirectory() as tmp:
        manifest_path = write_run(
            tele, Path(tmp) / "run", config=config,
            extra={"command": "example", "benchmark": "hotspot"},
        )
        print(f"wrote {manifest_path.name} + events.jsonl; rendered:")
        print()
        print(render_manifest(load_manifest(manifest_path)))


if __name__ == "__main__":
    main()
