#!/usr/bin/env python
"""Quickstart: co-simulate a voltage-stacked GPU running one benchmark.

Builds the paper's default cross-layer system — a 4x4 voltage-stacked
Fermi-class GPU with a 0.2x-die distributed CR-IVR and the Algorithm 1
voltage-smoothing controller — runs a few thousand cycles of the
``hotspot`` benchmark through the coupled GPU/PDN/controller loop, and
prints the headline numbers: power delivery efficiency, supply-noise
envelope, and throughput.

Run:  python examples/quickstart.py [benchmark] [cycles]
"""

import sys

import numpy as np

from repro.analysis.metrics import noise_box_stats
from repro.sim.cosim import CosimConfig, run_cosim


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 3000

    print(f"Co-simulating {benchmark!r} for {cycles} cycles "
          "(cross-layer voltage-stacked GPU)...")
    result = run_cosim(benchmark, CosimConfig(cycles=cycles, warmup_cycles=200))

    print()
    print(result.summary())
    print()

    efficiency = result.efficiency()
    print("Power delivery efficiency breakdown:")
    for component, fraction in efficiency.fractions().items():
        print(f"  {component:<11s} {fraction:7.2%}")
    print(f"  PDE = {efficiency.pde:.1%} "
          "(paper: 92.3% for the cross-layer system)")
    print()

    box = noise_box_stats(result.sm_voltages)
    print("Supply noise across all 16 SMs:")
    print(f"  min {box.minimum:.3f} V | q1 {box.q1:.3f} | "
          f"median {box.median:.3f} | q3 {box.q3:.3f} | "
          f"max {box.maximum:.3f} V")
    print(f"  guardband floor: 0.8 V; time below 0.9 V: "
          f"{float(np.mean(result.sm_voltages < 0.9)):.1%}")
    print()
    print(f"Layer imbalance (shuffled power fraction): "
          f"{result.power_trace.imbalance_fraction():.1%} "
          "(paper: usually < 20%)")


if __name__ == "__main__":
    main()
